// Time-series sampler (PR 9): manual-mode sampling and deltas, the bounded
// ring, background-thread lifecycle, the JSONL stream's replay invariants
// (monotonic seq/counters, delta consistency), and the Database wiring
// (default off — no thread; interval > 0 — sampler running and streaming).
#include "common/metrics_sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "test_util.h"
#include "util/fault_injector.h"

namespace ariesim {
namespace {

using ariesim::testing::DefaultOptions;
using ariesim::testing::TempDir;

// Minimal JSONL field extraction: the numeric value of `"key":` after
// position `from`. Returns false if the key isn't there.
bool ExtractU64(const std::string& line, const std::string& key, size_t from,
                uint64_t* out) {
  size_t pos = line.find("\"" + key + "\":", from);
  if (pos == std::string::npos) return false;
  pos += key.size() + 3;
  *out = std::strtoull(line.c_str() + pos, nullptr, 10);
  return true;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(MetricsSampler, ManualModeSamplesAndDeltas) {
  Metrics m;
  MetricsSampler sampler(&m, /*interval_ms=*/0, /*jsonl_path=*/"");
  sampler.Start();  // no-op in manual mode
  EXPECT_FALSE(sampler.running());

  m.pages_read.fetch_add(3);
  MetricsSample s0 = sampler.SampleOnce();
  EXPECT_EQ(s0.seq, 0u);
  ASSERT_EQ(s0.counters.size(), Metrics::kCounterCount);
  ASSERT_EQ(s0.hists.size(), Metrics::kHistogramCount);

  m.pages_read.fetch_add(7);
  m.commit_latency.Record(1'000'000);
  MetricsSample s1 = sampler.SampleOnce();
  EXPECT_EQ(s1.seq, 1u);
  EXPECT_GT(s1.t_ns, 0u);
  EXPECT_GE(s1.t_ns, s0.t_ns);

  // Locate pages_read's slot via the name table and check the cumulative
  // values and the rendered delta agree.
  size_t slot = Metrics::kCounterCount;
  const char* const* names = Metrics::CounterNames();
  for (size_t i = 0; i < Metrics::kCounterCount; ++i) {
    if (std::string(names[i]) == "pages_read") slot = i;
  }
  ASSERT_LT(slot, Metrics::kCounterCount);
  EXPECT_EQ(s0.counters[slot], 3u);
  EXPECT_EQ(s1.counters[slot], 10u);

  std::string line = MetricsSampler::ToJsonl(s1, &s0);
  size_t dpos = line.find("\"deltas\":{");
  ASSERT_NE(dpos, std::string::npos) << line;
  uint64_t delta = 0;
  ASSERT_TRUE(ExtractU64(line, "pages_read", dpos, &delta)) << line;
  EXPECT_EQ(delta, 7u);
  EXPECT_NE(line.find("\"rates_per_s\":{"), std::string::npos) << line;
  EXPECT_NE(line.find("\"histograms\":{"), std::string::npos) << line;
}

TEST(MetricsSampler, RingIsBounded) {
  Metrics m;
  MetricsSampler sampler(&m, 0, "", /*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) sampler.SampleOnce();
  std::vector<MetricsSample> recent = sampler.RecentSamples();
  ASSERT_EQ(recent.size(), 4u);
  // Oldest-first, and the oldest six were dropped.
  EXPECT_EQ(recent.front().seq, 6u);
  EXPECT_EQ(recent.back().seq, 9u);
  // max-limited view
  EXPECT_EQ(sampler.RecentSamples(2).size(), 2u);
  EXPECT_EQ(sampler.RecentSamples(2).front().seq, 8u);
}

TEST(MetricsSampler, BackgroundThreadLifecycle) {
  Metrics m;
  MetricsSampler sampler(&m, /*interval_ms=*/5, "");
  EXPECT_FALSE(sampler.running());
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  // Immediate sample on start + periodic ticks + final sample on stop.
  EXPECT_GE(sampler.sample_count(), 2u);
  size_t after_stop = sampler.sample_count();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sampler.sample_count(), after_stop) << "sampled after Stop()";
  sampler.Stop();  // idempotent
}

// The JSONL stream must replay cleanly: seq strictly increasing, cumulative
// counters monotonic, and each line's delta equal to the difference of
// consecutive cumulative values.
TEST(MetricsSampler, JsonlReplayConsistency) {
  TempDir dir("sampler_jsonl");
  std::string path = dir.path() + "/metrics.jsonl";
  Metrics m;
  MetricsSampler sampler(&m, 0, path);
  for (int i = 0; i < 5; ++i) {
    m.pages_read.fetch_add(static_cast<uint64_t>(i) * 11 + 1);
    m.log_records.fetch_add(2);
    m.commit_latency.Record(500'000 + i * 1000);
    sampler.SampleOnce();
  }

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 5u);
  uint64_t prev_seq = 0, prev_pages = 0;
  bool first = true;
  for (const std::string& line : lines) {
    uint64_t seq = 0;
    ASSERT_TRUE(ExtractU64(line, "seq", 0, &seq)) << line;
    if (!first) {
      EXPECT_EQ(seq, prev_seq + 1) << "seq gap: " << line;
    }

    size_t cpos = line.find("\"counters\":{");
    size_t dpos = line.find("\"deltas\":{");
    ASSERT_NE(cpos, std::string::npos) << line;
    ASSERT_NE(dpos, std::string::npos) << line;
    ASSERT_LT(cpos, dpos) << line;
    uint64_t pages = 0, delta = 0;
    ASSERT_TRUE(ExtractU64(line, "pages_read", cpos, &pages)) << line;
    ASSERT_TRUE(ExtractU64(line, "pages_read", dpos, &delta)) << line;
    EXPECT_GE(pages, prev_pages) << "counter went backwards: " << line;
    // Delta consistency: first line deltas are against zero.
    EXPECT_EQ(delta, pages - (first ? 0 : prev_pages)) << line;

    // Histogram snapshots ride along with counts.
    EXPECT_NE(line.find("\"commit_latency\":{\"count\":"), std::string::npos)
        << line;
    prev_seq = seq;
    prev_pages = pages;
    first = false;
  }
}

TEST(MetricsSampler, DatabaseDefaultHasNoSampler) {
  TempDir dir("sampler_off");
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  EXPECT_EQ(db->sampler(), nullptr)
      << "metrics_sample_interval_ms=0 must not spawn a sampler";
}

TEST(MetricsSampler, DatabaseIntegrationStreamsJsonl) {
  TempDir dir("sampler_db");
  std::string path = dir.path() + "/metrics.jsonl";
  Options opts = DefaultOptions();
  opts.metrics_sample_interval_ms = 10;
  opts.metrics_log_path = path;
  {
    auto db = std::move(Database::Open(dir.path(), opts).value());
    ASSERT_NE(db->sampler(), nullptr);
    EXPECT_TRUE(db->sampler()->running());
    db->CreateTable("t", 2).value();
    Table* table = db->GetTable("t");
    for (int i = 0; i < 10; ++i) {
      Transaction* txn = db->Begin();
      ASSERT_OK(table->Insert(txn, {"k" + std::to_string(i), "v"}));
      ASSERT_OK(db->Commit(txn));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(35));
  }  // ~Database stops the sampler (final sample flushed)
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_GE(lines.size(), 2u);
  uint64_t prev_seq = 0;
  bool first = true;
  for (const std::string& line : lines) {
    uint64_t seq = 0;
    ASSERT_TRUE(ExtractU64(line, "seq", 0, &seq)) << line;
    if (!first) {
      EXPECT_EQ(seq, prev_seq + 1);
    }
    prev_seq = seq;
    first = false;
  }
  // The workload's commits are visible in the final histogram snapshot.
  uint64_t commits = 0;
  size_t hpos = lines.back().find("\"commit_latency\":{");
  ASSERT_NE(hpos, std::string::npos) << lines.back();
  ASSERT_TRUE(ExtractU64(lines.back(), "count", hpos, &commits));
  EXPECT_GE(commits, 10u);
}

// The JSONL stream is the postmortem's timeline, so its tail must survive a
// crash intact: every line that made it to the file is complete (each is
// flushed as written, and Stop fsyncs), seq stays contiguous, and a torn
// crash of the engine's own files never tears the sidecar stream.
TEST(MetricsSampler, JsonlTailSurvivesTornCrash) {
  TempDir dir("sampler_torn");
  std::string path = dir.path() + "/metrics.jsonl";
  Options opts = DefaultOptions();
  opts.metrics_sample_interval_ms = 10;
  opts.metrics_log_path = path;
  {
    auto db = std::move(Database::Open(dir.path(), opts).value());
    ASSERT_NE(db->sampler(), nullptr);
    db->CreateTable("t", 2).value();
    Table* table = db->GetTable("t");
    for (int i = 0; i < 10; ++i) {
      Transaction* txn = db->Begin();
      ASSERT_OK(table->Insert(txn, {"k" + std::to_string(i), "v"}));
      ASSERT_OK(db->Commit(txn));
    }
    // Let at least two periodic samples land, then crash with a torn log
    // tail (SimulateCrash inside stops the sampler, which fsyncs the file).
    for (int i = 0; i < 500 && db->sampler()->sample_count() < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    TornCrashSpec spec;
    spec.target = TornCrashSpec::Target::kLogTail;
    spec.truncate_to =
        std::filesystem::file_size(dir.path() + "/wal.log") - 5;
    ASSERT_OK(db->SimulateTornCrash(spec));
  }

  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 2u);
  uint64_t prev_seq = 0;
  bool first = true;
  for (const std::string& l : lines) {
    ASSERT_FALSE(l.empty());
    EXPECT_EQ(l.front(), '{') << l;
    EXPECT_EQ(l.back(), '}') << "torn JSONL line: " << l;
    uint64_t seq = 0;
    ASSERT_TRUE(ExtractU64(l, "seq", 0, &seq)) << l;
    if (!first) EXPECT_EQ(seq, prev_seq + 1) << "seq gap at: " << l;
    prev_seq = seq;
    first = false;
  }
}

}  // namespace
}  // namespace ariesim
