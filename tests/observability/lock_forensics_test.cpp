// Concurrency forensics (PR 5, docs/OBSERVABILITY.md):
//  - a forced two-transaction deadlock leaves a postmortem naming both txns
//    and both lock names, and the victim's Status carries the cycle summary;
//  - the postmortem ring is bounded and keeps the newest entries;
//  - the blocked-waiter watchdog fires exactly once per contention episode
//    and re-arms after the episode drains;
//  - Snapshot() is internally consistent under an 8-thread storm (every
//    waits-for edge endpoint exists, every blocked txn's queue is present);
//  - the waits-for DOT export is a well-formed digraph.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "db/database.h"
#include "lock/lock_manager.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

const LockName kNameA = LockName::Record(1, Rid{1, 0});
const LockName kNameB = LockName::Record(1, Rid{2, 0});

// Drive txn `older` and txn `younger` into an A/B-ordered cycle. The
// younger (larger id) txn is the victim; returns its kDeadlock status.
// Both txns are fully released before returning.
Status ForceTwoTxnDeadlock(LockManager& lm, TxnId older, TxnId younger) {
  EXPECT_TRUE(lm.Lock(older, kNameA, LockMode::kX, LockDuration::kManual,
                      /*conditional=*/false)
                  .ok());
  EXPECT_TRUE(lm.Lock(younger, kNameB, LockMode::kX, LockDuration::kManual,
                      /*conditional=*/false)
                  .ok());
  std::thread blocker([&] {
    // Waits until the victim's abort releases kNameB.
    Status s = lm.Lock(older, kNameB, LockMode::kX, LockDuration::kManual,
                       /*conditional=*/false);
    EXPECT_TRUE(s.ok()) << s.ToString();
  });
  // Let the older txn's wait on B get queued so the cycle closes as soon as
  // the younger txn blocks on A. (The 5 ms detector poll closes any race.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Status victim = lm.Lock(younger, kNameA, LockMode::kX, LockDuration::kManual,
                          /*conditional=*/false);
  lm.ReleaseAll(younger);
  blocker.join();
  lm.ReleaseAll(older);
  return victim;
}

TEST(LockForensics, TwoTxnDeadlockPostmortemNamesBothSides) {
  Metrics metrics;
  LockManager lm(&metrics);
  Status victim = ForceTwoTxnDeadlock(lm, /*older=*/1, /*younger=*/2);
  ASSERT_TRUE(victim.IsDeadlock()) << victim.ToString();
  // The returned status carries the one-line cycle summary.
  EXPECT_NE(victim.ToString().find("cycle[len=2]"), std::string::npos)
      << victim.ToString();
  EXPECT_NE(victim.ToString().find("txn1"), std::string::npos);
  EXPECT_NE(victim.ToString().find("txn2"), std::string::npos);

  std::vector<DeadlockPostmortem> pms = lm.Postmortems();
  ASSERT_EQ(pms.size(), 1u);
  const DeadlockPostmortem& pm = pms[0];
  EXPECT_EQ(pm.seq, 1u);
  EXPECT_EQ(pm.victim, 2u);
  ASSERT_EQ(pm.cycle.size(), 2u);
  std::unordered_set<TxnId> txns;
  std::unordered_set<std::string> names;
  for (const DeadlockCycleNode& n : pm.cycle) {
    txns.insert(n.txn);
    names.insert(n.name.ToString());
    EXPECT_EQ(n.requested, LockMode::kX);
  }
  EXPECT_TRUE(txns.count(1) && txns.count(2));
  EXPECT_TRUE(names.count(kNameA.ToString()) && names.count(kNameB.ToString()));
  // Distributions fed: one 2-cycle, two member txns, one victim wait sample.
  std::vector<uint64_t> lens = lm.CycleLengthCounts();
  ASSERT_GT(lens.size(), 2u);
  EXPECT_EQ(lens[2], 1u);
  EXPECT_EQ(metrics.deadlock_cycle_txns.load(), 2u);
  EXPECT_EQ(metrics.deadlock_victim_wait.Snapshot().count, 1u);
  // JSON carries the victim and both members.
  std::string json = pm.ToJson();
  EXPECT_NE(json.find("\"victim\":2"), std::string::npos) << json;
  EXPECT_NE(json.find(kNameA.ToString()), std::string::npos) << json;
}

TEST(LockForensics, PostmortemRingKeepsNewestEntries) {
  Metrics metrics;
  LockManager lm(&metrics);
  lm.SetPostmortemCapacity(3);
  for (TxnId base = 10; base < 22; base += 2) {
    Status victim = ForceTwoTxnDeadlock(lm, base, base + 1);
    ASSERT_TRUE(victim.IsDeadlock()) << victim.ToString();
  }
  std::vector<DeadlockPostmortem> pms = lm.Postmortems();
  ASSERT_EQ(pms.size(), 3u);  // 6 deadlocks recorded, ring keeps 3
  EXPECT_EQ(pms.back().seq, 6u);
  for (size_t i = 1; i < pms.size(); ++i) {
    EXPECT_EQ(pms[i].seq, pms[i - 1].seq + 1);  // oldest-first, contiguous
  }
  EXPECT_EQ(pms.front().seq, 4u);
}

TEST(LockForensics, WatchdogFiresOncePerEpisodeAndRearms) {
  Metrics metrics;
  LockManager lm(&metrics);
  std::atomic<int> fires{0};
  std::string last_dump;
  std::mutex dump_mu;
  lm.ConfigureWatchdog(/*threshold_ms=*/10, [&](const std::string& dump) {
    fires.fetch_add(1);
    std::lock_guard<std::mutex> g(dump_mu);
    last_dump = dump;
  });
  for (int episode = 0; episode < 2; ++episode) {
    ASSERT_TRUE(lm.Lock(1, kNameA, LockMode::kX, LockDuration::kManual, false)
                    .ok());
    std::thread w1([&] {
      EXPECT_TRUE(
          lm.Lock(2, kNameA, LockMode::kS, LockDuration::kManual, false).ok());
    });
    std::thread w2([&] {
      EXPECT_TRUE(
          lm.Lock(3, kNameA, LockMode::kS, LockDuration::kManual, false).ok());
    });
    // Two waiters both cross the 10 ms threshold across many 5 ms polls;
    // the episode must still fire exactly once.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_EQ(fires.load(), episode + 1);
    lm.ReleaseAll(1);
    w1.join();
    w2.join();
    lm.ReleaseAll(2);
    lm.ReleaseAll(3);
    // Episode drained: the watchdog re-arms for the next iteration.
  }
  EXPECT_EQ(fires.load(), 2);
  EXPECT_EQ(metrics.lock_watchdog_dumps.load(), 2u);
  std::lock_guard<std::mutex> g(dump_mu);
  EXPECT_NE(last_dump.find("digraph waits_for"), std::string::npos);
  EXPECT_NE(last_dump.find(kNameA.ToString()), std::string::npos);
}

TEST(LockForensics, SnapshotAndDotShowBlockedWaiter) {
  Metrics metrics;
  LockManager lm(&metrics);
  ASSERT_TRUE(
      lm.Lock(7, kNameA, LockMode::kX, LockDuration::kManual, false).ok());
  std::thread waiter([&] {
    EXPECT_TRUE(
        lm.Lock(8, kNameA, LockMode::kS, LockDuration::kManual, false).ok());
  });
  // Let the waiter enqueue.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  LockTableSnapshot snap = lm.Snapshot();
  ASSERT_EQ(snap.queues.size(), 1u);
  ASSERT_EQ(snap.queues[0].requests.size(), 2u);
  EXPECT_TRUE(snap.queues[0].requests[0].granted);
  EXPECT_FALSE(snap.queues[0].requests[1].granted);
  EXPECT_GT(snap.queues[0].requests[1].wait_us, 0u);
  ASSERT_EQ(snap.edges.size(), 1u);
  EXPECT_EQ(snap.edges[0].waiter, 8u);
  EXPECT_EQ(snap.edges[0].holder, 7u);
  bool saw_blocked = false;
  for (const TxnLockInfo& t : snap.txns) {
    if (t.txn == 8) {
      saw_blocked = true;
      EXPECT_TRUE(t.blocked);
      EXPECT_EQ(t.blocked_on, kNameA);
      EXPECT_EQ(t.blocked_mode, LockMode::kS);
    }
  }
  EXPECT_TRUE(saw_blocked);

  // DOT export: a well-formed digraph with one labeled edge.
  std::string dot = snap.ToDot();
  EXPECT_EQ(dot.rfind("digraph waits_for", 0), 0u) << dot;
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  EXPECT_NE(dot.find("txn8"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find(kNameA.ToString()), std::string::npos);
  // Text dump names the blocked txn; DumpState is the same formatter.
  EXPECT_NE(snap.ToString().find("txn8"), std::string::npos);
  EXPECT_EQ(lm.DumpState().substr(0, 20), snap.ToString().substr(0, 20));

  lm.ReleaseAll(7);
  waiter.join();
  lm.ReleaseAll(8);
  // The blocked wait landed in the contention sketch.
  std::vector<LockManager::Contention::Entry> hot = lm.TopContention(5);
  ASSERT_FALSE(hot.empty());
  EXPECT_EQ(hot[0].key, kNameA);
  EXPECT_GE(hot[0].waits, 1u);
  EXPECT_GT(hot[0].wait_ns, 0u);
}

// Invariants every snapshot must satisfy, storm or not.
void CheckSnapshotConsistent(const LockTableSnapshot& snap) {
  std::unordered_set<TxnId> queue_txns;
  std::unordered_set<std::string> queue_names;
  for (const LockQueueInfo& q : snap.queues) {
    queue_names.insert(q.name.ToString());
    for (const LockRequestInfo& r : q.requests) queue_txns.insert(r.txn);
  }
  for (const WaitsForEdge& e : snap.edges) {
    // Edge endpoints must exist in some captured queue.
    EXPECT_TRUE(queue_txns.count(e.waiter)) << "edge waiter not in any queue";
    EXPECT_TRUE(queue_txns.count(e.holder)) << "edge holder not in any queue";
    EXPECT_TRUE(queue_names.count(e.name.ToString()));
    EXPECT_NE(e.waiter, e.holder);
  }
  for (const TxnLockInfo& t : snap.txns) {
    if (!t.blocked) continue;
    // A blocked txn's queue must appear, holding its non-granted (or
    // converting) request.
    bool found = false;
    for (const LockQueueInfo& q : snap.queues) {
      if (!(q.name == t.blocked_on)) continue;
      for (const LockRequestInfo& r : q.requests) {
        if (r.txn == t.txn && (!r.granted || r.converting)) found = true;
      }
    }
    EXPECT_TRUE(found) << "blocked txn " << t.txn << " has no waiting request";
  }
}

TEST(LockForensics, SnapshotConsistentUnderStorm) {
  TempDir dir("forensics_storm");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, false).ok());

  constexpr int kThreads = 8;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Random rnd(1000 + static_cast<uint64_t>(w));
      while (!stop.load()) {
        Transaction* txn = db->Begin();
        bool aborted = false;
        for (int i = 0; i < 3 && !aborted; ++i) {
          std::string key = "hot" + std::to_string(rnd.Uniform(6));
          Status s = table->Insert(txn, {key, "v"});
          if (!s.ok() && !s.IsDuplicate()) {
            EXPECT_TRUE(db->Rollback(txn).ok());
            aborted = true;
          }
        }
        if (!aborted) (void)db->Commit(txn);
      }
    });
  }
  // Sample the lock table mid-storm; every capture must be consistent.
  for (int i = 0; i < 50; ++i) {
    CheckSnapshotConsistent(db->locks()->Snapshot());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // The aggregated forensics JSON is live mid-storm too.
  std::string json = db->LockForensicsJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"snapshot\""), std::string::npos);
  EXPECT_NE(json.find("\"contention\""), std::string::npos);
  stop = true;
  for (auto& t : workers) t.join();
  // After every txn resolved (committed or deadlock-aborted) the waits-for
  // graph must have dissolved: no edges, no blocked txns. (Mid-storm a
  // transient cycle may exist for up to one detector tick, so acyclicity is
  // only asserted once drained.)
  LockTableSnapshot drained = db->locks()->Snapshot();
  EXPECT_TRUE(drained.edges.empty());
  for (const TxnLockInfo& t : drained.txns) EXPECT_FALSE(t.blocked);
  // Stats() carries the same forensics section.
  EXPECT_NE(db->Stats().ToJson().find("\"locks\""), std::string::npos);
}

}  // namespace
}  // namespace ariesim
