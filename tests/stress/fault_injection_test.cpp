// Randomized torn-write / partial-flush / transient-error crash-recovery
// harness. Each fault class runs a multi-threaded insert/delete workload
// with a seed-derived fault armed in the FaultInjector, crashes, recovers,
// and asserts that:
//  (1) the recovered state equals the committed reference model (in-doubt
//      commits — the commit record sat in the torn tail — may land either
//      way, but must land atomically);
//  (2) pages whose on-disk image fails its CRC are detected and rebuilt
//      from the log (restart_stats().torn_pages_repaired matches an offline
//      scan of the data file);
//  (3) the analysis/redo/undo bookkeeping in RestartStats and Metrics is
//      internally consistent.
//
// Reproduce one failing seed with:
//   ARIESIM_STRESS_SEEDS=<seed> ./fault_injection_test
//       --gtest_filter='Seeds/<Suite>*'
// (see docs/FAULT_INJECTION.md).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "db/database.h"
#include "fault_util.h"
#include "test_util.h"
#include "util/fault_injector.h"
#include "util/random.h"
#include "wal/log_manager.h"

namespace ariesim {
namespace {

using testing::CheckRestartConsistency;
using testing::CorruptPagesOnDisk;
using testing::FaultTestOptions;
using testing::RunFaultWorkload;
using testing::StressSeeds;
using testing::TempDir;
using testing::VerifyDatabaseState;
using testing::WorkloadParams;
using testing::WorkloadTrace;

class FaultClassTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void Open(const std::string& tag) {
    dir_ = std::make_unique<TempDir>(tag + "_" + std::to_string(GetParam()));
    db_ = std::move(Database::Open(dir_->path(), FaultTestOptions())).value();
    table_ = db_->CreateTable("t", 2).value();
    ASSERT_TRUE(db_->CreateIndex("t", "pk", 0, true).ok());
  }

  /// Commit a few rows per worker prefix so deletes have targets and page
  /// tears can hit pages that carry committed data.
  void SeedBaseRows() {
    Random rnd(GetParam() ^ 0xba5eba5e);
    for (int t = 0; t < kThreads; ++t) {
      Transaction* txn = db_->Begin();
      for (int i = 0; i < 12; ++i) {
        std::string key =
            "t" + std::to_string(t) + "-" + rnd.Key(rnd.Uniform(40), 3);
        Status s = table_->Insert(txn, {key, "base"});
        if (s.ok()) {
          trace_.committed[key] = "base";
        } else {
          ASSERT_TRUE(s.IsDuplicate()) << s.ToString();
        }
      }
      ASSERT_OK(db_->Commit(txn));
    }
  }

  /// Crash `db_` (keeping whatever the injected fault left on disk) and run
  /// restart recovery with a roomier pool.
  void CrashAndRecover(const TornCrashSpec& spec = TornCrashSpec{}) {
    ASSERT_OK(db_->SimulateTornCrash(spec));
    testing::MaybeKeepCrashImage(dir_->path());
    Options o = FaultTestOptions();
    o.buffer_pool_frames = 512;
    auto reopened = Database::Open(dir_->path(), o);
    ASSERT_TRUE(reopened.ok()) << "restart recovery failed: " << reopened.status().ToString();
    db_ = std::move(reopened).value();
    table_ = db_->GetTable("t");
    ASSERT_NE(table_, nullptr);
  }

  static constexpr int kThreads = 3;

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
  WorkloadTrace trace_;
};

// ---------------------------------------------------------------------------
// Fault class 1: a data-page write is torn at a seed-chosen byte. The write
// reports success (torn writes are only discovered after the crash), the
// device freezes, and restart must detect the page via its CRC and rebuild
// it from the log.
class TornWriteTest : public FaultClassTest {};

TEST_P(TornWriteTest, TornPageWriteDetectedAndRepaired) {
  const uint64_t seed = GetParam();
  Random rnd(seed);
  Open("ftorn");
  SeedBaseRows();
  ASSERT_OK(db_->FlushAllPages());

  FaultSpec spec;
  spec.kind = FaultKind::kTornWrite;
  spec.site = FaultSite::kDataWrite;
  spec.nth = rnd.Range(0, 6);
  spec.keep_bytes =
      static_cast<uint32_t>(rnd.Range(8, FaultTestOptions().page_size - 1));
  db_->fault_injector()->Arm(spec);
  SCOPED_TRACE("spec " + spec.ToString());

  RunFaultWorkload(db_.get(), table_, seed, WorkloadParams{}, &trace_);

  ASSERT_OK(db_->SimulateTornCrash(TornCrashSpec{}));
  testing::MaybeKeepCrashImage(dir_->path());
  // At most the one torn write can have damaged the file: the device froze
  // the instant the tear fired.
  auto bad = CorruptPagesOnDisk(dir_->path(), FaultTestOptions().page_size);
  EXPECT_LE(bad.size(), 1u);

  Options o = FaultTestOptions();
  o.buffer_pool_frames = 512;
  auto reopened = Database::Open(dir_->path(), o);
  ASSERT_TRUE(reopened.ok()) << "restart recovery failed: " << reopened.status().ToString();
  db_ = std::move(reopened).value();
  table_ = db_->GetTable("t");
  ASSERT_NE(table_, nullptr);
  EXPECT_EQ(db_->restart_stats().torn_pages_repaired, bad.size())
      << "every CRC-failing page (and nothing else) must be rebuilt";
  VerifyDatabaseState(db_.get(), &trace_, seed);
  CheckRestartConsistency(db_.get(), seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornWriteTest,
                         ::testing::ValuesIn(StressSeeds(32)));

// ---------------------------------------------------------------------------
// Fault class 2: a log flush persists only a prefix of the tail and fails.
// Transactions whose commit record sat in that tail are in doubt: recovery
// must land each of them entirely before or entirely after, never half-way.
class PartialFlushTest : public FaultClassTest {};

TEST_P(PartialFlushTest, PartiallyFlushedTailRecoversAtomically) {
  const uint64_t seed = GetParam();
  Random rnd(seed);
  Open("fplog");
  SeedBaseRows();

  FaultSpec spec;
  spec.kind = FaultKind::kPartialFlush;
  spec.site = FaultSite::kLogFlush;
  spec.nth = rnd.Range(0, 10);
  spec.keep_bytes = static_cast<uint32_t>(rnd.Range(0, 3000));
  db_->fault_injector()->Arm(spec);
  SCOPED_TRACE("spec " + spec.ToString());

  RunFaultWorkload(db_.get(), table_, seed, WorkloadParams{}, &trace_);

  CrashAndRecover();
  VerifyDatabaseState(db_.get(), &trace_, seed);
  CheckRestartConsistency(db_.get(), seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialFlushTest,
                         ::testing::ValuesIn(StressSeeds(32)));

// ---------------------------------------------------------------------------
// Fault class 3: a transient IOError at a seed-chosen site, healing after
// `repeat` failures. The workload retries every Commit/Rollback to a
// definite outcome, so the database must be exactly the committed model —
// live (catches dirty pages destroyed by a failed eviction write-back) and
// again after a crash.
class TransientErrorTest : public FaultClassTest {};

TEST_P(TransientErrorTest, TransientIoErrorsNeverLoseCommittedData) {
  const uint64_t seed = GetParam();
  Random rnd(seed);
  Open("ftrans");
  SeedBaseRows();

  FaultSpec spec;
  spec.kind = FaultKind::kTransientError;
  spec.site = static_cast<FaultSite>(rnd.Uniform(kFaultSiteCount));
  spec.nth = rnd.Range(0, 30);
  spec.repeat = static_cast<uint32_t>(rnd.Range(1, 3));
  spec.freeze_after = false;
  db_->fault_injector()->Arm(spec);
  SCOPED_TRACE("spec " + spec.ToString());

  WorkloadParams p;
  p.stop_on_trip = false;
  p.retry_errors = true;
  RunFaultWorkload(db_.get(), table_, seed, p, &trace_);
  db_->fault_injector()->Disarm();
  ASSERT_TRUE(trace_.indoubt.empty())
      << "transient errors heal; every commit must reach a definite outcome";

  {
    SCOPED_TRACE("live verify (pre-crash)");
    VerifyDatabaseState(db_.get(), &trace_, seed);
  }

  CrashAndRecover();
  {
    SCOPED_TRACE("post-recovery verify");
    VerifyDatabaseState(db_.get(), &trace_, seed);
  }
  CheckRestartConsistency(db_.get(), seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransientErrorTest,
                         ::testing::ValuesIn(StressSeeds(32)));

// ---------------------------------------------------------------------------
// Fault class 4: SimulateTornCrash — a clean workload, then the crash
// itself leaves the files mid-write: either a torn data page (chosen from
// the dirty page table, so restart redo is guaranteed to visit it) or a log
// tail truncated at a seed-chosen byte at or above the last committed
// flush.
class TornCrashTest : public FaultClassTest {};

TEST_P(TornCrashTest, TornCrashStateIsRecoverable) {
  const uint64_t seed = GetParam();
  Random rnd(seed);
  Open("fcrash");
  SeedBaseRows();

  WorkloadParams p;
  p.stop_on_trip = false;
  RunFaultWorkload(db_.get(), table_, seed, p, &trace_);
  ASSERT_TRUE(trace_.indoubt.empty()) << "no fault was armed";
  Lsn committed_flushed = db_->wal()->flushed_lsn();

  // Leave one transaction in flight across the crash.
  Transaction* inflight = db_->Begin();
  ASSERT_OK(table_->Insert(inflight, {"zz-inflight", "boom"}));
  ASSERT_OK(db_->wal()->FlushAll());

  auto dpt = db_->pool()->DirtyPageTable();
  bool tore_page = rnd.Percent(50) && !dpt.empty();
  TornCrashSpec spec;
  if (tore_page) {
    // Tear a page that is in the restart dirty page table: redo must fetch
    // it, trip over the CRC, and rebuild it.
    ASSERT_OK(db_->FlushAllPages());
    spec.target = TornCrashSpec::Target::kDataPage;
    spec.page_id = dpt[rnd.Uniform(dpt.size())].first;
    spec.keep_bytes = static_cast<uint32_t>(
        rnd.Range(0, FaultTestOptions().page_size - 64));
  } else {
    // Truncate the log tail anywhere in [last committed flush, end): every
    // commit record survives; the in-flight transaction's tail (and
    // possibly a record cut in half) does not.
    spec.target = TornCrashSpec::Target::kLogTail;
    spec.truncate_to = rnd.Range(committed_flushed, db_->wal()->next_lsn());
  }
  SCOPED_TRACE("spec " + spec.ToString());

  CrashAndRecover(spec);
  if (tore_page) {
    EXPECT_GE(db_->restart_stats().torn_pages_repaired, 1u)
        << "page " << spec.page_id << " was torn on disk";
  }
  VerifyDatabaseState(db_.get(), &trace_, seed);
  CheckRestartConsistency(db_.get(), seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornCrashTest,
                         ::testing::ValuesIn(StressSeeds(32)));

// ---------------------------------------------------------------------------
// Mid-SMO crash: truncate the log tail exactly at the last dummy CLR, so
// the final split's structural records survive without the record that
// closes their nested top action. Restart undo must physically invert the
// incomplete SMO (paper §3, Figure 9) — observable as smo_structural_undos.
TEST(FaultInjectionMidSmoTest, TruncatedTailLandsInsideSmo) {
  TempDir dir("fsmo");
  Options o = FaultTestOptions();
  auto R = [](uint64_t i) {
    return Rid{static_cast<PageId>(8000 + i / 50),
               static_cast<uint16_t>(i % 50)};
  };
  constexpr uint64_t kCommitted = 12;
  {
    auto db = std::move(Database::Open(dir.path(), o)).value();
    db->CreateTable("t", 1).value();
    BTree* tree = db->CreateIndex("t", "ix", 0, false).value();
    std::string fat(20, 's');
    Transaction* setup = db->Begin();
    for (uint64_t i = 0; i < kCommitted; ++i) {
      ASSERT_OK(tree->Insert(setup, "k" + Random(0).Key(i, 6) + fat, R(i)));
    }
    ASSERT_OK(db->Commit(setup));
    Lsn commit_flushed = db->wal()->flushed_lsn();

    Transaction* loser = db->Begin();
    uint64_t splits_before = db->metrics().smo_splits.load();
    for (uint64_t i = 0; i < 120; ++i) {
      ASSERT_OK(tree->Insert(loser, "x" + Random(0).Key(i, 6) + fat,
                             R(100 + i)));
    }
    ASSERT_GT(db->metrics().smo_splits.load(), splits_before)
        << "the loser must drive splits for the scenario to exist";
    ASSERT_OK(db->wal()->FlushAll());

    // Find the last dummy CLR after the commit: truncating at its LSN cuts
    // it off while keeping all of its SMO's structural records.
    Lsn last_dummy = kNullLsn;
    LogManager::Reader reader(db->wal(), kLogFilePrologue);
    LogRecord rec;
    while (reader.Next(&rec).ok()) {
      if (rec.IsDummyClr() && rec.lsn > commit_flushed) last_dummy = rec.lsn;
    }
    ASSERT_NE(last_dummy, kNullLsn);

    TornCrashSpec spec;
    spec.target = TornCrashSpec::Target::kLogTail;
    spec.truncate_to = last_dummy;
    ASSERT_OK(db->SimulateTornCrash(spec));
  }
  auto reopened = Database::Open(dir.path(), o);
  ASSERT_TRUE(reopened.ok()) << "restart recovery failed: " << reopened.status().ToString();
  auto db = std::move(reopened).value();
  EXPECT_GT(db->metrics().smo_structural_undos.load(), 0u)
      << "restart should have landed inside a nested top action";
  size_t keys = 0;
  ASSERT_OK(db->GetIndex("ix")->Validate(&keys));
  EXPECT_EQ(keys, kCommitted);
  testing::CheckRestartConsistency(db.get(), 0);
}

}  // namespace
}  // namespace ariesim
