// Deadlock behavior (paper §4):
//  - lock-lock deadlocks between forward-processing transactions are
//    detected and resolved by aborting the youngest;
//  - rolling-back transactions never deadlock (they acquire no locks);
//  - latch protocols never deadlock: a storm of concurrent SMO-heavy
//    traffic completes without hangs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

TEST(DeadlockTest, ClassicTwoTxnCycleResolved) {
  TempDir dir("dl2");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
  Transaction* setup = db->Begin();
  Rid ra, rb;
  ASSERT_OK(table->Insert(setup, {"a", "0"}, &ra));
  ASSERT_OK(table->Insert(setup, {"b", "0"}, &rb));
  ASSERT_OK(db->Commit(setup));

  // T1 reads a then deletes b; T2 reads b then deletes a — opposite order.
  Transaction* t1 = db->Begin();
  Transaction* t2 = db->Begin();
  std::optional<Row> row;
  ASSERT_OK(table->FetchByKey(t1, "pk", "a", &row));
  ASSERT_OK(table->FetchByKey(t2, "pk", "b", &row));

  const TxnId id1 = t1->id();
  const TxnId id2 = t2->id();
  std::atomic<int> deadlocks{0}, oks{0};
  auto run = [&](Transaction* txn, Rid target) {
    Status s = table->Delete(txn, target);
    if (s.IsDeadlock()) {
      EXPECT_EQ(s.code(), Code::kDeadlock);
      deadlocks.fetch_add(1);
      EXPECT_TRUE(db->Rollback(txn).ok());
    } else {
      EXPECT_TRUE(s.ok()) << s.ToString();
      oks.fetch_add(1);
      EXPECT_TRUE(db->Commit(txn).ok());
    }
  };
  std::thread a(run, t1, rb);
  std::thread b(run, t2, ra);
  a.join();
  b.join();
  EXPECT_EQ(deadlocks.load(), 1);
  EXPECT_EQ(oks.load(), 1);
  EXPECT_GE(db->metrics().deadlocks.load(), 1u);
  // Victim and winner alike must leave nothing behind in the lock table.
  EXPECT_EQ(db->locks()->HeldCount(id1), 0u);
  EXPECT_EQ(db->locks()->HeldCount(id2), 0u);
}

TEST(DeadlockTest, LockUpgradeDeadlockResolvedWithoutLockLeak) {
  // The conversion deadlock: both transactions hold S on the same record
  // and both request the upgrade to X. Neither S holder can drain, so the
  // detector must pick a victim; the survivor's upgrade is then granted.
  TempDir dir("dlup");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
  Transaction* setup = db->Begin();
  Rid rid;
  ASSERT_OK(table->Insert(setup, {"u", "0"}, &rid));
  ASSERT_OK(db->Commit(setup));

  Transaction* t1 = db->Begin();
  Transaction* t2 = db->Begin();
  const TxnId id1 = t1->id();
  const TxnId id2 = t2->id();
  // Both read the record: commit-duration S locks on the same rid.
  std::optional<Row> row;
  ASSERT_OK(table->FetchByKey(t1, "pk", "u", &row));
  ASSERT_OK(table->FetchByKey(t2, "pk", "u", &row));
  const uint64_t deadlocks_before = db->metrics().deadlocks.load();

  std::atomic<int> victims{0}, winners{0};
  auto run = [&](Transaction* txn) {
    Status s = table->Delete(txn, rid);  // S -> X upgrade on the record
    if (s.IsDeadlock()) {
      EXPECT_EQ(s.code(), Code::kDeadlock);
      victims.fetch_add(1);
      EXPECT_TRUE(db->Rollback(txn).ok());
    } else {
      EXPECT_TRUE(s.ok()) << s.ToString();
      winners.fetch_add(1);
      EXPECT_TRUE(db->Commit(txn).ok());
    }
  };
  std::thread a(run, t1);
  std::thread b(run, t2);
  a.join();
  b.join();
  EXPECT_EQ(victims.load(), 1);
  EXPECT_EQ(winners.load(), 1);
  EXPECT_GE(db->metrics().deadlocks.load(), deadlocks_before + 1);
  // No lock leak: the victim's withdrawn upgrade and its S lock are gone,
  // and the winner released everything at commit.
  EXPECT_EQ(db->locks()->HeldCount(id1), 0u);
  EXPECT_EQ(db->locks()->HeldCount(id2), 0u);
  // The record is gone (winner's delete committed) and the index agrees.
  Transaction* check = db->Begin();
  ASSERT_OK(table->FetchByKey(check, "pk", "u", &row));
  EXPECT_FALSE(row.has_value());
  ASSERT_OK(db->Commit(check));
}

TEST(DeadlockTest, VictimRollbackNeverDeadlocks) {
  // A rolling-back victim holds conflicting locks but requests none; its
  // rollback must complete even while other transactions are waiting on it.
  TempDir dir("dlrb");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());

  Transaction* holder = db->Begin();
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(table->Insert(holder, {"h" + std::to_string(i), "v"}));
  }
  // Spawn waiters blocked on the holder's keys.
  std::vector<std::thread> waiters;
  std::atomic<int> finished{0};
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&db, &table, &finished, i] {
      Transaction* w = db->Begin();
      std::optional<Row> row;
      Status s = table->FetchByKey(w, "pk", "h" + std::to_string(i * 10), &row);
      EXPECT_TRUE(s.ok() || s.IsDeadlock()) << s.ToString();
      (void)db->Rollback(w);
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(finished.load(), 0) << "waiters should be blocked";
  // The holder rolls back — 50 undos while 4 transactions wait on its locks.
  ASSERT_OK(db->Rollback(holder));
  for (auto& w : waiters) w.join();
  EXPECT_EQ(finished.load(), 4);
}

TEST(DeadlockTest, HighContentionStormMakesProgress) {
  // Many threads hammering a tiny keyspace: deadlocks occur and are
  // resolved; the run terminates (no latch deadlocks, no lost wakeups) and
  // the index stays valid.
  TempDir dir("dlstorm");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());

  constexpr int kThreads = 8;
  constexpr int kTxns = 30;
  std::atomic<uint64_t> commits{0}, victims{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      Random rnd(77 + static_cast<uint64_t>(tid));
      for (int t = 0; t < kTxns; ++t) {
        Transaction* txn = db->Begin();
        bool dead = false;
        for (int op = 0; op < 3 && !dead; ++op) {
          std::string key = "hot" + std::to_string(rnd.Uniform(6));
          if (rnd.Percent(50)) {
            Status s = table->Insert(txn, {key, std::to_string(tid)});
            if (s.IsDeadlock()) dead = true;
            else EXPECT_TRUE(s.ok() || s.IsDuplicate()) << s.ToString();
          } else {
            std::optional<Row> row;
            Rid rid;
            Status s = table->FetchByKey(txn, "pk", key, &row, &rid);
            if (s.IsDeadlock()) {
              dead = true;
            } else if (s.ok() && row.has_value()) {
              s = table->Delete(txn, rid);
              if (s.IsDeadlock()) dead = true;
              else EXPECT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
            }
          }
        }
        if (dead) {
          victims.fetch_add(1);
          Status rs = db->Rollback(txn);
          EXPECT_TRUE(rs.ok()) << "rollback: " << rs.ToString();
        } else {
          Status cs = db->Commit(txn);
          EXPECT_TRUE(cs.ok()) << "commit: " << cs.ToString();
          commits.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(commits.load() + victims.load(),
            static_cast<uint64_t>(kThreads) * kTxns);
  EXPECT_GT(commits.load(), 0u);
  // Every victim the workers observed was counted by the detector.
  EXPECT_GE(db->metrics().deadlocks.load(), victims.load());
  ASSERT_OK(db->GetIndex("pk")->Validate(nullptr));
}

TEST(DeadlockTest, SmoStormNoLatchDeadlock) {
  // Concurrent writers forcing constant splits and page deletes while
  // readers traverse: terminates and validates — the latch ordering and
  // the tree-latch protocol admit no latch deadlocks (§4).
  TempDir dir("dlsmo");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  db->CreateTable("t", 1).value();
  BTree* tree = db->CreateIndex("t", "ix", 0, false).value();

  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0}, reads{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Random rnd(123 + static_cast<uint64_t>(w));
      std::vector<std::pair<std::string, Rid>> mine;
      while (!stop.load()) {
        Transaction* txn = db->Begin();
        bool ok = true;
        for (int i = 0; i < 10 && ok; ++i) {
          if (mine.size() < 50 || rnd.Percent(55)) {
            std::string k =
                "w" + std::to_string(w) + "-" + rnd.Key(rnd.Uniform(100000), 6);
            Rid r{static_cast<PageId>(10000 + w), static_cast<uint16_t>(
                                                      mine.size() % 1000)};
            Status s = tree->Insert(txn, k, r);
            if (s.ok()) {
              mine.emplace_back(k, r);
            } else if (!s.IsDuplicate()) {
              ADD_FAILURE() << "insert failed: " << s.ToString();
              ok = false;
            }
          } else {
            auto [k, r] = mine.back();
            Status s = tree->Delete(txn, k, r);
            if (s.ok()) {
              mine.pop_back();
            } else {
              ADD_FAILURE() << "delete failed: " << s.ToString();
            }
          }
        }
        if (db->Commit(txn).ok()) writes.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    Random rnd(999);
    while (!stop.load()) {
      Transaction* txn = db->Begin();
      FetchResult r;
      Status s = tree->Fetch(txn, "w1-" + rnd.Key(rnd.Uniform(100000), 6),
                             FetchCond::kGe, &r);
      EXPECT_TRUE(s.ok()) << s.ToString();
      (void)db->Commit(txn);
      reads.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  stop = true;
  for (auto& t : threads) t.join();
  EXPECT_GT(writes.load(), 5u);
  EXPECT_GT(reads.load(), 5u);
  EXPECT_GT(db->metrics().smo_splits.load(), 0u);
  ASSERT_OK(tree->Validate(nullptr));
}

}  // namespace
}  // namespace ariesim
