// Multi-threaded stress: concurrent fetch/insert/delete/scan transactions
// against one table with a unique and a nonunique index. Invariants checked
// after the storm:
//  - every committed transaction's effects are present, every aborted one's
//    absent (reference model kept under a mutex);
//  - the tree validates structurally;
//  - heap and index agree.
// Parameterized over locking protocol so all three run the same storm.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class ConcurrentMixTest
    : public ::testing::TestWithParam<LockingProtocolKind> {};

TEST_P(ConcurrentMixTest, MixedWorkloadKeepsInvariants) {
  TempDir dir("mix");
  Options opts = SmallPageOptions();
  opts.index_locking = GetParam();
  auto db = std::move(Database::Open(dir.path(), opts)).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, /*unique=*/true).ok());

  constexpr int kThreads = 6;
  constexpr int kTxnsPerThread = 40;
  constexpr int kKeySpace = 200;

  // Committed reference state: key -> value.
  std::mutex ref_mu;
  std::map<std::string, std::string> reference;
  std::atomic<uint64_t> commits{0}, aborts{0}, deadlocks{0};

  auto worker = [&](int tid) {
    Random rnd(1000 + static_cast<uint64_t>(tid));
    for (int t = 0; t < kTxnsPerThread; ++t) {
      Transaction* txn = db->Begin();
      // Each transaction performs 1-4 operations, then commits or aborts.
      int nops = static_cast<int>(rnd.Range(1, 4));
      bool failed = false;
      // Ordered last-writer-wins intents: an insert-then-delete of the same
      // key within one transaction must net out to "absent".
      std::map<std::string, std::optional<std::string>> intents;
      for (int op = 0; op < nops && !failed; ++op) {
        std::string key = "k" + rnd.Key(rnd.Uniform(kKeySpace), 4);
        uint32_t dice = static_cast<uint32_t>(rnd.Uniform(100));
        if (dice < 40) {  // fetch
          std::optional<Row> row;
          Status s = table->FetchByKey(txn, "pk", key, &row);
          if (s.IsDeadlock()) {
            failed = true;
            deadlocks.fetch_add(1);
          } else if (!s.ok()) {
            ADD_FAILURE() << "fetch: " << s.ToString();
            failed = true;
          }
        } else if (dice < 75) {  // insert
          std::string value = "v" + std::to_string(tid) + "-" + std::to_string(t);
          Status s = table->Insert(txn, {key, value});
          if (s.ok()) {
            intents[key] = value;
          } else if (s.IsDeadlock()) {
            failed = true;
            deadlocks.fetch_add(1);
          } else if (!s.IsDuplicate()) {
            ADD_FAILURE() << "insert: " << s.ToString();
            failed = true;
          }
        } else {  // delete (find via index first)
          std::optional<Row> row;
          Rid rid;
          Status s = table->FetchByKey(txn, "pk", key, &row, &rid);
          if (s.IsDeadlock()) {
            failed = true;
            deadlocks.fetch_add(1);
            continue;
          }
          if (s.ok() && row.has_value()) {
            s = table->Delete(txn, rid);
            if (s.ok()) {
              intents[key] = std::nullopt;
            } else if (s.IsDeadlock()) {
              failed = true;
              deadlocks.fetch_add(1);
            } else if (!s.IsNotFound()) {
              ADD_FAILURE() << "delete: " << s.ToString();
              failed = true;
            }
          }
        }
      }
      if (failed || rnd.Percent(20)) {
        Status s = db->Rollback(txn);
        EXPECT_TRUE(s.ok()) << s.ToString();
        aborts.fetch_add(1);
        continue;
      }
      // Commit and apply intents to the reference under one mutex hold.
      // (The reference mutex is taken across commit to make the reference
      // update atomic with the database commit order for these keys — the
      // transactions' key sets may overlap only through locks that are
      // still held here, so this is linearization-safe.)
      std::lock_guard<std::mutex> lk(ref_mu);
      Status s = db->Commit(txn);
      EXPECT_TRUE(s.ok()) << s.ToString();
      for (auto& [k, v] : intents) {
        if (v.has_value()) {
          reference[k] = *v;
        } else {
          reference.erase(k);
        }
      }
      commits.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_GT(commits.load(), 0u);
  // Final state equals the reference.
  BTree* tree = db->GetIndex("pk");
  size_t keys = 0;
  ASSERT_OK(tree->Validate(&keys));
  EXPECT_EQ(keys, reference.size());

  Transaction* check = db->Begin();
  for (auto& [k, v] : reference) {
    std::optional<Row> row;
    ASSERT_OK(table->FetchByKey(check, "pk", k, &row));
    ASSERT_TRUE(row.has_value()) << "committed key " << k << " missing";
    EXPECT_EQ((*row)[1], v) << "wrong committed value for " << k;
  }
  ASSERT_OK(db->Commit(check));

  // Heap and index agree on cardinality.
  std::vector<std::pair<Rid, std::string>> rows;
  ASSERT_OK(table->heap()->ScanAll(&rows));
  EXPECT_EQ(rows.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ConcurrentMixTest,
    ::testing::Values(LockingProtocolKind::kDataOnly,
                      LockingProtocolKind::kIndexSpecific,
                      LockingProtocolKind::kKeyValue),
    [](const ::testing::TestParamInfo<LockingProtocolKind>& info) {
      switch (info.param) {
        case LockingProtocolKind::kDataOnly:
          return "DataOnly";
        case LockingProtocolKind::kIndexSpecific:
          return "IndexSpecific";
        case LockingProtocolKind::kKeyValue:
          return "KVL";
        default:
          return "None";
      }
    });

TEST(ConcurrentScanTest, ScansRunAgainstWriters) {
  TempDir dir("scan_mix");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());

  // Seed.
  {
    Transaction* txn = db->Begin();
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(table->Insert(txn, {"s" + Random(0).Key(i, 4), "seed"}));
    }
    ASSERT_OK(db->Commit(txn));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans_done{0}, writes_done{0}, scan_errors{0};
  std::thread writer([&] {
    Random rnd(9);
    while (!stop.load()) {
      Transaction* txn = db->Begin();
      std::string key = "w" + rnd.Key(rnd.Uniform(1000), 4);
      Status s = table->Insert(txn, {key, "w"});
      if (s.ok() || s.IsDuplicate()) {
        if (db->Commit(txn).ok()) writes_done.fetch_add(1);
      } else {
        (void)db->Rollback(txn);
      }
    }
  });
  std::thread scanner([&] {
    while (!stop.load()) {
      Transaction* txn = db->Begin();
      TableScan scan(table, db->GetIndex("pk"));
      Status s = scan.Open(txn, "s", FetchCond::kGe);
      if (!s.ok()) {
        scan_errors.fetch_add(1);
        (void)db->Rollback(txn);
        continue;
      }
      std::string prev;
      int n = 0;
      while (true) {
        Row row;
        Rid rid;
        bool done = false;
        s = scan.Next(txn, &row, &rid, &done);
        if (!s.ok() || done) break;
        if (!prev.empty() && row[0] <= prev) {
          scan_errors.fetch_add(1);
          break;
        }
        prev = row[0];
        ++n;
      }
      (void)db->Commit(txn);
      if (n > 0) scans_done.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop = true;
  writer.join();
  scanner.join();
  EXPECT_GT(scans_done.load(), 0u);
  EXPECT_GT(writes_done.load(), 0u);
  EXPECT_EQ(scan_errors.load(), 0u) << "scans must always see ordered keys";
  ASSERT_OK(db->GetIndex("pk")->Validate(nullptr));
}

}  // namespace
}  // namespace ariesim
