// Randomized crash-recovery property test (parameterized over seeds):
//
//   run a random single-threaded workload of transactions (insert / delete /
//   update through a unique index), committing or aborting at random, with
//   random page steals (FlushPage) along the way; crash at a random point;
//   recover; assert the database equals the reference model of exactly the
//   committed transactions, and the tree validates. Repeat with a second
//   crash during recovery for good measure.
#include <gtest/gtest.h>

#include <map>

#include "db/database.h"
#include "fault_util.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class CrashRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashRandomTest, RecoveredStateEqualsCommittedReference) {
  uint64_t seed = GetParam();
  Random rnd(seed);
  TempDir dir("crash_rnd");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());

  std::map<std::string, std::string> committed;  // reference
  const int kTxns = static_cast<int>(rnd.Range(10, 40));
  const int kKeySpace = 60;

  for (int t = 0; t < kTxns; ++t) {
    Transaction* txn = db->Begin();
    std::map<std::string, std::optional<std::string>> intents;
    int nops = static_cast<int>(rnd.Range(1, 8));
    for (int op = 0; op < nops; ++op) {
      std::string key = "k" + rnd.Key(rnd.Uniform(kKeySpace), 3);
      if (rnd.Percent(60)) {
        std::string value = "v" + std::to_string(t) + "." + std::to_string(op);
        Status s = table->Insert(txn, {key, value});
        if (s.ok()) {
          intents[key] = value;
        } else {
          ASSERT_TRUE(s.IsDuplicate()) << s.ToString();
        }
      } else {
        std::optional<Row> row;
        Rid rid;
        ASSERT_OK(table->FetchByKey(txn, "pk", key, &row, &rid));
        if (row.has_value()) {
          ASSERT_OK(table->Delete(txn, rid));
          intents[key] = std::nullopt;
        }
      }
      // Occasional mid-transaction page steal (dirty page forced to disk).
      if (rnd.Percent(15)) {
        (void)db->FlushPage(static_cast<PageId>(rnd.Uniform(100)));
      }
    }
    if (rnd.Percent(30)) {
      ASSERT_OK(db->Rollback(txn));
    } else {
      ASSERT_OK(db->Commit(txn));
      for (auto& [k, v] : intents) {
        if (v.has_value()) {
          committed[k] = *v;
        } else {
          committed.erase(k);
        }
      }
    }
    if (rnd.Percent(10)) {
      ASSERT_OK(db->Checkpoint());
    }
  }
  // Leave one transaction in flight at the crash.
  Transaction* in_flight = db->Begin();
  (void)table->Insert(in_flight, {"zz-inflight", "boom"});
  ASSERT_OK(db->wal()->FlushAll());
  for (PageId pid = 0; pid < 100; ++pid) {
    if (rnd.Percent(40)) (void)db->FlushPage(pid);
  }
  db->SimulateCrash();

  // First recovery, interrupted at a random point in the undo pass.
  {
    Options o = SmallPageOptions();
    o.recover_on_open = false;
    auto crashed = std::move(Database::Open(dir.path(), o)).value();
    crashed->recovery()->TestStopUndoAfter(static_cast<int>(rnd.Uniform(5)));
    RestartStats stats;
    Status s = crashed->recovery()->Restart(&stats);
    (void)s;  // may or may not hit the injection
    ASSERT_OK(crashed->wal()->FlushAll());
    crashed->SimulateCrash();
  }

  // Final recovery.
  auto recovered = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* rtable = recovered->GetTable("t");
  ASSERT_NE(rtable, nullptr);
  BTree* rtree = recovered->GetIndex("pk");
  size_t keys = 0;
  ASSERT_OK(rtree->Validate(&keys));
  EXPECT_EQ(keys, committed.size()) << "seed " << seed;

  Transaction* check = recovered->Begin();
  for (auto& [k, v] : committed) {
    std::optional<Row> row;
    ASSERT_OK(rtable->FetchByKey(check, "pk", k, &row));
    ASSERT_TRUE(row.has_value()) << "seed " << seed << ": lost committed " << k;
    EXPECT_EQ((*row)[1], v) << "seed " << seed << ": stale value for " << k;
  }
  std::optional<Row> row;
  ASSERT_OK(rtable->FetchByKey(check, "pk", "zz-inflight", &row));
  EXPECT_FALSE(row.has_value()) << "in-flight transaction leaked";
  ASSERT_OK(recovered->Commit(check));

  // Heap agrees with the index.
  std::vector<std::pair<Rid, std::string>> rows;
  ASSERT_OK(rtable->heap()->ScanAll(&rows));
  EXPECT_EQ(rows.size(), committed.size()) << "seed " << seed;
}

// Seed list overridable via ARIESIM_STRESS_SEEDS (e.g. "42" or "1-64") to
// replay a failing seed or widen the sweep; defaults to 1..10.
INSTANTIATE_TEST_SUITE_P(Seeds, CrashRandomTest,
                         ::testing::ValuesIn(testing::StressSeeds(10)));

}  // namespace
}  // namespace ariesim
