// Lock-granularity sweep (paper §2.1: "different granularities of locking
// … in a flexible manner"): the same concurrent workload must keep its
// invariants at record, page, and table granularity — coarser granularities
// only trade concurrency, never correctness.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class GranularityTest : public ::testing::TestWithParam<LockGranularity> {};

TEST_P(GranularityTest, ConcurrentMixKeepsInvariants) {
  TempDir dir("gran");
  Options o = SmallPageOptions();
  o.lock_granularity = GetParam();
  auto db = std::move(Database::Open(dir.path(), o)).value();
  Table* table = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());

  constexpr int kThreads = 4;
  constexpr int kTxns = 25;
  std::mutex ref_mu;
  std::map<std::string, std::string> reference;
  std::atomic<uint64_t> commits{0};

  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      Random rnd(31 + static_cast<uint64_t>(tid));
      for (int t = 0; t < kTxns; ++t) {
        Transaction* txn = db->Begin();
        // Ordered last-writer-wins intents: an insert-then-delete of the
        // same key within one transaction must net out to "absent".
        std::map<std::string, std::optional<std::string>> intents;
        bool failed = false;
        for (int op = 0; op < 3 && !failed; ++op) {
          std::string key = "g" + rnd.Key(rnd.Uniform(80), 3);
          if (rnd.Percent(60)) {
            std::string value = std::to_string(tid) + ":" + std::to_string(t);
            Status s = table->Insert(txn, {key, value});
            if (s.ok()) {
              intents[key] = value;
            } else if (s.IsDeadlock()) {
              failed = true;
            } else if (!s.IsDuplicate()) {
              ADD_FAILURE() << s.ToString();
              failed = true;
            }
          } else {
            std::optional<Row> row;
            Rid rid;
            Status s = table->FetchByKey(txn, "pk", key, &row, &rid);
            if (s.IsDeadlock()) {
              failed = true;
            } else if (s.ok() && row.has_value()) {
              s = table->Delete(txn, rid);
              if (s.ok()) {
                intents[key] = std::nullopt;
              } else if (s.IsDeadlock()) {
                failed = true;
              }
            }
          }
        }
        if (failed) {
          EXPECT_OK(db->Rollback(txn));
          continue;
        }
        std::lock_guard<std::mutex> lk(ref_mu);
        Status s = db->Commit(txn);
        EXPECT_TRUE(s.ok()) << s.ToString();
        for (auto& [k, v] : intents) {
          if (v.has_value()) {
            reference[k] = *v;
          } else {
            reference.erase(k);
          }
        }
        commits.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(commits.load(), 0u);

  size_t keys = 0;
  ASSERT_OK(db->GetIndex("pk")->Validate(&keys));
  EXPECT_EQ(keys, reference.size());
  Transaction* check = db->Begin();
  for (auto& [k, v] : reference) {
    std::optional<Row> row;
    ASSERT_OK(table->FetchByKey(check, "pk", k, &row));
    ASSERT_TRUE(row.has_value()) << k;
    EXPECT_EQ((*row)[1], v) << k;
  }
  ASSERT_OK(db->Commit(check));
}

INSTANTIATE_TEST_SUITE_P(
    Granularities, GranularityTest,
    ::testing::Values(LockGranularity::kRecord, LockGranularity::kPage,
                      LockGranularity::kTable),
    [](const ::testing::TestParamInfo<LockGranularity>& info) {
      switch (info.param) {
        case LockGranularity::kRecord:
          return "Record";
        case LockGranularity::kPage:
          return "Page";
        default:
          return "Table";
      }
    });

}  // namespace
}  // namespace ariesim
