// Instant-restart stress harness (PR 8; docs/ARCHITECTURE.md, "Instant
// restart"). The classic three-pass restart is the verification oracle:
//  (1) A/B: the same crash image recovered both ways must converge to
//      byte-identical data files and the same committed state;
//  (2) the deferred redo debt drains — by first-touch traffic, by
//      WaitForRecoveryDrain, or by the background sweeper — and every
//      scheduled page is recovered exactly once;
//  (3) nested crashes: crashing *during* instant restart (mid-lazy-replay,
//      mid-sweeper, right after a checkpoint that persisted the page index
//      with pages still pending, or onto a torn data page) must still
//      converge to the oracle state on the next recovery, classic or
//      instant.
//
// Reproduce one failing seed with:
//   ARIESIM_STRESS_SEEDS=<seed> ./instant_restart_test
//       --gtest_filter='Seeds/<Suite>*'
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "db/database.h"
#include "fault_util.h"
#include "test_util.h"
#include "util/fault_injector.h"
#include "util/random.h"
#include "wal/log_manager.h"

namespace ariesim {
namespace {

using testing::CheckRestartConsistency;
using testing::FaultTestOptions;
using testing::MaybeKeepCrashImage;
using testing::RunFaultWorkload;
using testing::StressSeeds;
using testing::TempDir;
using testing::VerifyDatabaseState;
using testing::WorkloadParams;
using testing::WorkloadTrace;

Options InstantOptions(bool sweep = false) {
  Options o = FaultTestOptions();
  o.buffer_pool_frames = 512;
  o.instant_restart = true;
  o.instant_restart_sweep = sweep;
  return o;
}

Options ClassicOptions() {
  Options o = FaultTestOptions();
  o.buffer_pool_frames = 512;
  return o;
}

/// Read a whole file; empty string if unreadable.
std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f.is_open()) return {};
  std::string out(static_cast<size_t>(f.tellg()), '\0');
  f.seekg(0);
  f.read(out.data(), static_cast<std::streamsize>(out.size()));
  return out;
}

class InstantRestartTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void Open(const std::string& tag) {
    dir_ = std::make_unique<TempDir>(tag + "_" + std::to_string(GetParam()));
    // Build the workload in instant mode so its random checkpoints persist
    // kPageIndex chunks — the crash images then exercise the chunk-merge
    // side of analysis, not just the tail-scan side.
    Options o = FaultTestOptions();
    o.instant_restart = true;
    db_ = std::move(Database::Open(dir_->path(), o)).value();
    table_ = db_->CreateTable("t", 2).value();
    ASSERT_TRUE(db_->CreateIndex("t", "pk", 0, true).ok());
  }

  void SeedBaseRows() {
    Random rnd(GetParam() ^ 0xba5eba5e);
    for (int t = 0; t < 3; ++t) {
      Transaction* txn = db_->Begin();
      for (int i = 0; i < 12; ++i) {
        std::string key =
            "t" + std::to_string(t) + "-" + rnd.Key(rnd.Uniform(40), 3);
        Status s = table_->Insert(txn, {key, "base"});
        if (s.ok()) {
          trace_.committed[key] = "base";
        } else {
          ASSERT_TRUE(s.IsDuplicate()) << s.ToString();
        }
      }
      ASSERT_OK(db_->Commit(txn));
    }
  }

  /// Seeded load with losers in flight, then a plain crash. Leaves `db_`
  /// crashed; the directory holds the crash image.
  void BuildCrashImage() {
    Open("instant");
    SeedBaseRows();
    WorkloadParams p;
    p.stop_on_trip = false;
    RunFaultWorkload(db_.get(), table_, GetParam(), p, &trace_);
    ASSERT_TRUE(trace_.indoubt.empty()) << "no fault was armed";
    // Leave one transaction in flight so the undo pass has a loser whose
    // CLRs both recovery modes must append identically.
    Transaction* inflight = db_->Begin();
    ASSERT_OK(table_->Insert(inflight, {"zz-inflight", "boom"}));
    ASSERT_OK(db_->wal()->FlushAll());
    db_->SimulateCrash();
    MaybeKeepCrashImage(dir_->path());
  }

  /// Reopen `dir` with `o`, stashing the handle in `db_` (and refreshing
  /// `table_`).
  void Reopen(const std::string& dir, const Options& o) {
    auto reopened = Database::Open(dir, o);
    ASSERT_OK(reopened.status());
    db_ = std::move(reopened).value();
    table_ = db_->GetTable("t");
    ASSERT_NE(table_, nullptr);
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
  WorkloadTrace trace_;
};

// ---------------------------------------------------------------------------
// Oracle A/B: recover the identical crash image with the classic three-pass
// restart and with instant restart; after a full drain and a clean close the
// two data files must be byte-identical, and both must satisfy the
// committed-state reference model.
using OracleABTest = InstantRestartTest;

TEST_P(OracleABTest, ByteIdenticalToClassicRestart) {
  BuildCrashImage();
  const std::string dir_a = dir_->path();
  const std::string dir_b = dir_a + "-b";
  std::filesystem::remove_all(dir_b);
  std::filesystem::copy(dir_a, dir_b,
                        std::filesystem::copy_options::recursive);

  // A: classic oracle.
  Reopen(dir_a, ClassicOptions());
  EXPECT_FALSE(db_->restart_stats().instant);
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
  CheckRestartConsistency(db_.get(), GetParam());
  db_.reset();  // clean close: checkpoint + flush

  // B: instant restart, drained deterministically (no sweeper).
  Reopen(dir_b, InstantOptions());
  EXPECT_TRUE(db_->restart_stats().instant);
  EXPECT_EQ(db_->restart_stats().redo_records, 0u)
      << "instant restart must not run the sequential redo pass";
  const uint64_t scheduled = db_->restart_stats().lazy_pages_scheduled;
  EXPECT_EQ(db_->PendingRecoveryPages() +
                db_->metrics().pages_recovered_lazily.load(),
            scheduled)
      << "every scheduled page is either still pending or recovered";
  ASSERT_OK(db_->WaitForRecoveryDrain());
  EXPECT_EQ(db_->PendingRecoveryPages(), 0u);
  EXPECT_EQ(db_->metrics().pages_recovered_lazily.load(), scheduled);
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
  CheckRestartConsistency(db_.get(), GetParam());
  db_.reset();

  std::string a = Slurp(dir_a + "/data.db");
  std::string b = Slurp(dir_b + "/data.db");
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size()) << "data files diverged in size";
  if (a != b) {
    const size_t ps = FaultTestOptions().page_size;
    for (size_t off = 0; off < a.size(); off += ps) {
      if (a.compare(off, ps, b, off, ps) != 0) {
        PageView va(a.data() + off, ps);
        PageView vb(b.data() + off, ps);
        std::string ranges;
        for (size_t i = 0; i < ps; ++i) {
          if (a[off + i] == b[off + i]) continue;
          size_t j = i;
          while (j < ps && a[off + j] != b[off + j]) ++j;
          ranges += " [" + std::to_string(i) + "," + std::to_string(j) + "):";
          for (size_t k = i; k < j && k < i + 8; ++k) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "%02x/%02x,",
                          static_cast<unsigned char>(a[off + k]),
                          static_cast<unsigned char>(b[off + k]));
            ranges += buf;
          }
          i = j;
        }
        FAIL() << "first divergent page " << off / ps
               << " between classic and instant recovery: classic type="
               << static_cast<int>(va.type()) << " page_lsn=" << va.page_lsn()
               << ", instant type=" << static_cast<int>(vb.type())
               << " page_lsn=" << vb.page_lsn()
               << ", differing classic/instant bytes:" << ranges;
      }
    }
  }
  std::filesystem::remove_all(dir_b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleABTest,
                         ::testing::ValuesIn(StressSeeds(8)));

// ---------------------------------------------------------------------------
// The background sweeper drains the debt without any foreground traffic.
using SweeperTest = InstantRestartTest;

TEST_P(SweeperTest, SweeperDrainsDebt) {
  BuildCrashImage();
  Reopen(dir_->path(), InstantOptions(/*sweep=*/true));
  ASSERT_OK(db_->WaitForRecoveryDrain());
  EXPECT_EQ(db_->PendingRecoveryPages(), 0u);
  EXPECT_EQ(db_->metrics().pages_recovered_lazily.load(),
            db_->restart_stats().lazy_pages_scheduled);
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweeperTest,
                         ::testing::ValuesIn(StressSeeds(4)));

// ---------------------------------------------------------------------------
// First-touch traffic alone retires the debt: with the sweeper off, reading
// the whole committed state through the normal access paths recovers every
// page the verification touches, and the explicit drain finishes the rest.
using FirstTouchTest = InstantRestartTest;

TEST_P(FirstTouchTest, TrafficDrainsDebt) {
  BuildCrashImage();
  Reopen(dir_->path(), InstantOptions());
  const uint64_t scheduled = db_->restart_stats().lazy_pages_scheduled;
  // Verification reads every committed key through index + heap: each fetch
  // of a pending page replays its chain on the spot.
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
  if (scheduled > 0) {
    EXPECT_GT(db_->metrics().pages_recovered_lazily.load(), 0u)
        << "foreground reads never hit a pending page";
  }
  ASSERT_OK(db_->WaitForRecoveryDrain());
  EXPECT_EQ(db_->PendingRecoveryPages(), 0u);
  // New transactions work while (and after) the debt drains.
  Transaction* txn = db_->Begin();
  ASSERT_OK(table_->Insert(txn, {"zz-post-restart", "alive"}));
  ASSERT_OK(db_->Commit(txn));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirstTouchTest,
                         ::testing::ValuesIn(StressSeeds(4)));

// ---------------------------------------------------------------------------
// Nested crash mid-lazy-replay: crash again while pages are still pending
// (after some were recovered by first-touch reads and new transactions
// committed on top). Both a classic and an instant reopen of that second
// crash image must converge to the reference state.
using NestedCrashTest = InstantRestartTest;

TEST_P(NestedCrashTest, CrashMidLazyReplayRecoversBothWays) {
  BuildCrashImage();
  Reopen(dir_->path(), InstantOptions());
  // Partially drain: touch a few committed keys so some (not all) pending
  // pages recover, then commit fresh work on top of the half-recovered pool.
  Transaction* reader = db_->Begin();
  int touched = 0;
  for (const auto& kv : trace_.committed) {
    std::optional<Row> row;
    ASSERT_OK(table_->FetchByKey(reader, "pk", kv.first, &row));
    if (++touched >= 5) break;
  }
  ASSERT_OK(db_->Commit(reader));
  Transaction* writer = db_->Begin();
  ASSERT_OK(table_->Insert(writer, {"zz-nested", "mid-replay"}));
  ASSERT_OK(db_->Commit(writer));
  trace_.committed["zz-nested"] = "mid-replay";
  ASSERT_OK(db_->wal()->FlushAll());
  db_->SimulateCrash();
  MaybeKeepCrashImage(dir_->path());

  const std::string dir_a = dir_->path();
  const std::string dir_b = dir_a + "-b";
  std::filesystem::remove_all(dir_b);
  std::filesystem::copy(dir_a, dir_b,
                        std::filesystem::copy_options::recursive);

  // Classic oracle on the nested crash image.
  Reopen(dir_a, ClassicOptions());
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
  CheckRestartConsistency(db_.get(), GetParam());
  db_.reset();

  // Instant recovery of a crashed instant recovery.
  Reopen(dir_b, InstantOptions());
  ASSERT_OK(db_->WaitForRecoveryDrain());
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
  db_.reset();
  std::filesystem::remove_all(dir_b);
}

TEST_P(NestedCrashTest, CrashMidSweeperRecovers) {
  BuildCrashImage();
  // Sweeper on: crash races the drain (StopSweeper serializes the race, as
  // a real crash's process death would).
  Reopen(dir_->path(), InstantOptions(/*sweep=*/true));
  db_->SimulateCrash();
  Reopen(dir_->path(), ClassicOptions());
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
  CheckRestartConsistency(db_.get(), GetParam());
}

TEST_P(NestedCrashTest, CrashAfterCheckpointWithPendingPages) {
  BuildCrashImage();
  Reopen(dir_->path(), InstantOptions());
  if (db_->PendingRecoveryPages() > 0) {
    // Checkpoint while the debt is outstanding: its DPT (and the persisted
    // page-index chunks) must carry the pending pages' recLSNs.
    ASSERT_OK(db_->Checkpoint());
  }
  db_->SimulateCrash();
  Reopen(dir_->path(), InstantOptions());
  ASSERT_OK(db_->WaitForRecoveryDrain());
  EXPECT_EQ(db_->PendingRecoveryPages(), 0u);
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
}

TEST_P(NestedCrashTest, RepeatedInstantCrashesConverge) {
  BuildCrashImage();
  for (int round = 0; round < 3; ++round) {
    Reopen(dir_->path(), InstantOptions());
    db_->SimulateCrash();
  }
  Reopen(dir_->path(), ClassicOptions());
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
  CheckRestartConsistency(db_.get(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedCrashTest,
                         ::testing::ValuesIn(StressSeeds(8)));

// ---------------------------------------------------------------------------
// Torn data page under instant restart: the crash leaves one materialized
// page torn; the lazy replay's fetch trips the CRC and the online repair
// path rebuilds it inside the same quarantine — no restart-time redo sweep
// exists to find it first.
using TornPageTest = InstantRestartTest;

TEST_P(TornPageTest, TornPageRepairsDuringLazyReplay) {
  Random rnd(GetParam());
  Open("instant_torn");
  SeedBaseRows();
  WorkloadParams p;
  p.stop_on_trip = false;
  RunFaultWorkload(db_.get(), table_, GetParam(), p, &trace_);
  ASSERT_TRUE(trace_.indoubt.empty()) << "no fault was armed";
  ASSERT_OK(db_->wal()->FlushAll());

  auto dpt = db_->pool()->DirtyPageTable();
  if (dpt.empty()) {
    db_->SimulateCrash();
    GTEST_SKIP() << "no dirty pages to tear for this seed";
  }
  // Materialize everything, then tear one page that carried redo debt.
  ASSERT_OK(db_->FlushAllPages());
  TornCrashSpec spec;
  spec.target = TornCrashSpec::Target::kDataPage;
  spec.page_id = dpt[rnd.Uniform(dpt.size())].first;
  spec.keep_bytes = static_cast<uint32_t>(
      rnd.Range(0, FaultTestOptions().page_size - 64));
  SCOPED_TRACE("spec " + spec.ToString());
  ASSERT_OK(db_->SimulateTornCrash(spec));
  MaybeKeepCrashImage(dir_->path());

  Reopen(dir_->path(), InstantOptions());
  ASSERT_OK(db_->WaitForRecoveryDrain());
  {
    // The torn page may not lie on any verification path (e.g. a space-map
    // page): touch it explicitly so the repair must have happened.
    auto guard = db_->pool()->FetchPage(spec.page_id, LatchMode::kShared);
    ASSERT_OK(guard.status());
  }
  EXPECT_GE(db_->metrics().pages_repaired_online.load(), 1u)
      << "page " << spec.page_id << " was torn on disk";
  VerifyDatabaseState(db_.get(), &trace_, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornPageTest,
                         ::testing::ValuesIn(StressSeeds(8)));

}  // namespace
}  // namespace ariesim
