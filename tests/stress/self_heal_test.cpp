// Self-healing storage stress suite (docs/ARCHITECTURE.md "Engine health"):
//  - bit-rot on cold pages under a live multi-threaded workload is detected
//    at fetch time and repaired online from the log, with no restart;
//  - two rotten pages faulted in concurrently exercise the thread-safety of
//    RecoveryManager::RebuildPageImage (run under TSan);
//  - a persistent (media) read error is healed by rebuilding the page from
//    the log even though the device never serves that page again;
//  - a stuck-then-recovering device is ridden out by I/O retry alone, with
//    no repair at all;
//  - when the log history is lost, an unrepairable page degrades the engine
//    to read-only instead of crashing or serving corrupt bytes.
//
// Seeds come from StressSeeds(16); replay one in isolation with
// ARIESIM_STRESS_SEEDS (see docs/FAULT_INJECTION.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "fault_util.h"

namespace ariesim {
namespace {

using testing::FaultTestOptions;
using testing::RunFaultWorkload;
using testing::StressSeeds;
using testing::TempDir;
using testing::VerifyDatabaseState;
using testing::WorkloadParams;
using testing::WorkloadTrace;

/// Overwrite one page of data.db with 0xAB junk — media decay while the
/// engine is running. The buffer pool must never serve these bytes.
void CorruptPageOnDisk(const std::string& dir, PageId pid, size_t ps) {
  std::fstream f(dir + "/data.db",
                 std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  std::string junk(ps, '\xAB');
  f.seekp(static_cast<std::streamoff>(pid) * static_cast<std::streamoff>(ps));
  f.write(junk.data(), static_cast<std::streamsize>(ps));
  f.flush();
}

class SelfHealBase : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("selfheal");
  }

  void OpenDb(const Options& o) {
    db_ = std::move(Database::Open(dir_->path(), o)).value();
    table_ = db_->CreateTable("t", 2).value();
    tree_ = db_->CreateIndex("t", "pk", 0, true).value();
    cold_ = db_->CreateTable("c", 2).value();
    cold_tree_ = db_->CreateIndex("c", "cpk", 0, true).value();
  }

  /// Commit `n` rows into the cold table and flush, so its pages sit clean
  /// on disk with their full history in the log. The workload only writes
  /// table "t", so these pages never see another log record — the shape
  /// online repair quarantines against.
  void SeedColdTable(int n) {
    Transaction* txn = db_->Begin();
    for (int i = 0; i < n; ++i) {
      std::string key = "c" + std::to_string(1000 + i);
      std::string val = "cv" + std::to_string(i);
      ASSERT_OK(cold_->Insert(txn, {key, val}));
      cold_ref_[key] = val;
    }
    ASSERT_OK(db_->Commit(txn));
    ASSERT_OK(db_->FlushAllPages());
  }

  /// Pages owned by the cold table or its index (heap, leaves, internals).
  std::vector<PageId> ColdPages() {
    std::vector<PageId> out;
    size_t ps = db_->options().page_size;
    auto bytes = std::filesystem::file_size(dir_->path() + "/data.db");
    PageId npages = static_cast<PageId>((bytes + ps - 1) / ps);
    for (PageId pid = kSpaceMapPages; pid < npages; ++pid) {
      auto g = db_->pool()->FetchPage(pid, LatchMode::kShared);
      if (!g.ok()) continue;
      uint32_t owner = g.value().view().owner_id();
      if (owner == cold_->meta().id || owner == cold_tree_->index_id()) {
        out.push_back(pid);
      }
    }
    return out;
  }

  /// Evict `pid` so the next fetch must go to disk; spins past transient
  /// pins (the workload never pins cold pages, but the pool might be
  /// mid-eviction).
  void EvictPage(PageId pid) {
    Status s = db_->pool()->DiscardPage(pid);
    while (s.IsBusy()) {
      std::this_thread::yield();
      s = db_->pool()->DiscardPage(pid);
    }
    ASSERT_OK(s);
  }

  /// Every seeded cold row is readable with its committed value and the
  /// cold index is structurally valid — i.e. repair reproduced the exact
  /// committed state, not merely a well-formed page.
  void VerifyColdTable() {
    Transaction* check = db_->Begin();
    std::optional<Row> row;
    for (const auto& [k, v] : cold_ref_) {
      ASSERT_OK(cold_->FetchByKey(check, "cpk", k, &row));
      ASSERT_TRUE(row.has_value()) << "cold key " << k;
      EXPECT_EQ((*row)[1], v) << "cold key " << k;
    }
    ASSERT_OK(db_->Commit(check));
    size_t keys = 0;
    ASSERT_OK(cold_tree_->Validate(&keys));
    EXPECT_EQ(keys, cold_ref_.size());
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
  BTree* tree_ = nullptr;
  Table* cold_ = nullptr;
  BTree* cold_tree_ = nullptr;
  std::map<std::string, std::string> cold_ref_;
};

class SelfHealTest : public SelfHealBase,
                     public ::testing::WithParamInterface<uint64_t> {
 protected:
  void SetUp() override {
    SelfHealBase::SetUp();
    OpenDb(FaultTestOptions());
  }
};

// Cold pages rot one at a time while four workload threads keep committing;
// every rot is detected on fetch and repaired online, and at the end both
// the workload's committed state and the cold table read back exactly —
// without a single restart.
TEST_P(SelfHealTest, BitRotOnColdPagesRepairedOnlineUnderLoad) {
  const uint64_t seed = GetParam();
  SeedColdTable(60);
  std::vector<PageId> cold_pages = ColdPages();
  ASSERT_GE(cold_pages.size(), 3u);

  WorkloadTrace trace;
  WorkloadParams p;
  p.threads = 4;
  p.txns_per_thread = 15;
  p.stop_on_trip = false;  // bit-rot trips the injector but nothing fails
  p.retry_errors = true;
  std::thread load(
      [&] { RunFaultWorkload(db_.get(), table_, seed, p, &trace); });

  Random rnd(seed ^ 0xc01dc01dull);
  Metrics& m = db_->metrics();

  // Rounds 1-3: armed bit-rot — the read itself delivers rotten bytes.
  for (int round = 0; round < 3; ++round) {
    PageId victim = cold_pages[rnd.Uniform(cold_pages.size())];
    EvictPage(victim);
    uint64_t before = m.pages_repaired_online.load();
    FaultSpec spec;
    spec.kind = FaultKind::kBitRot;
    spec.site = FaultSite::kDataRead;
    spec.page_id = victim;
    db_->fault_injector()->Arm(spec);
    {
      auto g = db_->pool()->FetchPage(victim, LatchMode::kShared);
      ASSERT_TRUE(g.ok()) << "round " << round << " page " << victim << ": "
                          << g.status().ToString();
      EXPECT_NE(g.value().view().type(), PageType::kInvalid);
    }
    db_->fault_injector()->Disarm();
    EXPECT_EQ(m.pages_repaired_online.load(), before + 1)
        << "round " << round << " page " << victim;
  }

  // Round 4: two pages rot at once (direct on-disk corruption, no injector)
  // and two threads fault them in concurrently — concurrent
  // RebuildPageImage, each quarantined behind its own in-progress slot.
  PageId v1 = cold_pages.front();
  PageId v2 = cold_pages.back();
  ASSERT_NE(v1, v2);
  EvictPage(v1);
  EvictPage(v2);
  uint64_t before = m.pages_repaired_online.load();
  size_t ps = db_->options().page_size;
  CorruptPageOnDisk(dir_->path(), v1, ps);
  CorruptPageOnDisk(dir_->path(), v2, ps);
  std::thread f1([&] {
    auto g = db_->pool()->FetchPage(v1, LatchMode::kShared);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
  });
  std::thread f2([&] {
    auto g = db_->pool()->FetchPage(v2, LatchMode::kShared);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
  });
  f1.join();
  f2.join();
  EXPECT_EQ(m.pages_repaired_online.load(), before + 2);

  load.join();

  EXPECT_EQ(db_->Health(), EngineHealth::kHealthy);
  EXPECT_EQ(m.health_trips.load(), 0u);
  EXPECT_EQ(m.torn_pages_repaired.load(), 0u);  // no restart ran
  EXPECT_GE(m.pages_repaired_online.load(), 5u);
  VerifyColdTable();
  VerifyDatabaseState(db_.get(), &trace, seed);
}

// The log's history is lost (truncated to its prologue) while the engine
// keeps running, then a cold page rots. The rebuild finds no history, so
// the engine must degrade to read-only: reads still served, writes
// rejected with the typed status, the corrupt page never served.
TEST_P(SelfHealTest, LostLogHistoryTripsReadOnly) {
  const uint64_t seed = GetParam();
  SeedColdTable(30);
  std::vector<PageId> cold_pages = ColdPages();
  ASSERT_GE(cold_pages.size(), 2u);

  WorkloadTrace trace;
  WorkloadParams p;
  p.threads = 4;
  p.txns_per_thread = 6;
  p.stop_on_trip = false;
  p.retry_errors = true;
  RunFaultWorkload(db_.get(), table_, seed, p, &trace);
  ASSERT_OK(db_->FlushAllPages());

  std::filesystem::resize_file(dir_->path() + "/wal.log", kLogFilePrologue);
  Random rnd(seed ^ 0xdeadull);
  PageId victim = cold_pages[rnd.Uniform(cold_pages.size())];
  EvictPage(victim);
  CorruptPageOnDisk(dir_->path(), victim, db_->options().page_size);

  auto g = db_->pool()->FetchPage(victim, LatchMode::kShared);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Code::kCorruption) << g.status().ToString();
  EXPECT_EQ(db_->Health(), EngineHealth::kReadOnly) << db_->HealthReason();
  EXPECT_FALSE(db_->HealthReason().empty());
  EXPECT_EQ(db_->metrics().health_trips.load(), 1u);
  EXPECT_EQ(db_->metrics().pages_repaired_online.load(), 0u);

  // Reads of healthy pages are still served...
  Transaction* txn = db_->Begin();
  std::optional<Row> row;
  int probed = 0;
  for (const auto& [k, v] : trace.committed) {
    if (++probed > 3) break;
    ASSERT_OK(table_->FetchByKey(txn, "pk", k, &row));
    ASSERT_TRUE(row.has_value()) << "committed key " << k;
    EXPECT_EQ((*row)[1], v);
  }
  // ...writes are rejected with the typed status...
  Status ins = table_->Insert(txn, {"zz-new", "v"});
  EXPECT_TRUE(ins.IsReadOnly()) << ins.ToString();
  EXPECT_EQ(db_->CreateTable("x", 1).status().code(), Code::kReadOnly);
  ASSERT_OK(db_->Rollback(txn));

  // ...and the corrupt page stays quarantined: the fetch keeps failing
  // rather than ever serving the rotten bytes, and the trip is one-way
  // and counted once.
  EXPECT_FALSE(db_->pool()->FetchPage(victim, LatchMode::kShared).ok());
  EXPECT_EQ(db_->Health(), EngineHealth::kReadOnly);
  EXPECT_EQ(db_->metrics().health_trips.load(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfHealTest,
                         ::testing::ValuesIn(StressSeeds(16)));

using SelfHealDeviceTest = SelfHealBase;

// A media failure that never heals: every read of the victim page returns
// IOError, forever. Retry exhausts, and online repair rebuilds the page
// from the log instead — the device's copy is dead but the data is not.
TEST_F(SelfHealDeviceTest, PersistentReadErrorRebuiltFromLog) {
  OpenDb(FaultTestOptions());  // Options default: 4 read attempts
  SeedColdTable(20);
  std::vector<PageId> cold_pages = ColdPages();
  ASSERT_FALSE(cold_pages.empty());
  PageId victim = cold_pages.front();
  EvictPage(victim);

  FaultSpec spec;
  spec.kind = FaultKind::kPersistentError;
  spec.site = FaultSite::kDataRead;
  spec.page_id = victim;
  db_->fault_injector()->Arm(spec);

  Metrics& m = db_->metrics();
  uint64_t retries_before = m.io_retries.load();
  {
    auto g = db_->pool()->FetchPage(victim, LatchMode::kShared);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_NE(g.value().view().type(), PageType::kInvalid);
  }
  db_->fault_injector()->Disarm();

  EXPECT_EQ(m.pages_repaired_online.load(), 1u);
  EXPECT_GE(m.io_retries.load(), retries_before + 3);  // 4 attempts, 3 retries
  EXPECT_EQ(db_->Health(), EngineHealth::kHealthy);
  VerifyColdTable();
}

// A device that hangs and then comes back: reads of the victim fail for a
// stall window, and exponential backoff alone rides it out — the fetch
// succeeds with no repair and no degradation.
TEST_F(SelfHealDeviceTest, StuckDeviceRiddenOutByRetryBackoff) {
  Options o = FaultTestOptions();
  o.io_retry_attempts = 8;
  o.io_retry_base_delay_us = 300;
  o.io_retry_max_delay_us = 5000;
  OpenDb(o);
  SeedColdTable(20);
  std::vector<PageId> cold_pages = ColdPages();
  ASSERT_FALSE(cold_pages.empty());
  PageId victim = cold_pages.front();
  EvictPage(victim);

  FaultSpec spec;
  spec.kind = FaultKind::kStuckDevice;
  spec.site = FaultSite::kDataRead;
  spec.page_id = victim;
  spec.stall_us = 1000;  // backoff sleeps 300+600+1200µs: past the stall
  db_->fault_injector()->Arm(spec);

  Metrics& m = db_->metrics();
  uint64_t repaired_before = m.pages_repaired_online.load();
  {
    auto g = db_->pool()->FetchPage(victim, LatchMode::kShared);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_NE(g.value().view().type(), PageType::kInvalid);
  }
  db_->fault_injector()->Disarm();

  EXPECT_EQ(m.pages_repaired_online.load(), repaired_before);  // retry only
  EXPECT_GE(m.io_retries.load(), 1u);
  EXPECT_EQ(db_->Health(), EngineHealth::kHealthy);
  VerifyColdTable();
}

}  // namespace
}  // namespace ariesim
