// Shared scaffolding for the fault-injection crash-recovery harness
// (tests/stress/fault_injection_test.cpp and friends):
//  - seed-list parsing so a failing seed can be replayed in isolation via
//    ARIESIM_STRESS_SEEDS (see docs/FAULT_INJECTION.md);
//  - a multi-threaded workload driver that records exactly what was
//    committed, and which commits are *in doubt* (the commit record was
//    appended but the flush reported failure — after a crash either outcome
//    is legal, as long as it is atomic);
//  - a verifier that compares the recovered database against that record;
//  - an offline CRC scan of the data file (same predicate the buffer pool
//    applies on load) to predict torn-page repairs;
//  - restart-stats / metrics consistency checks.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "test_util.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace ariesim {
namespace testing {

/// Seeds for parameterized stress suites. Defaults to 1..n; the environment
/// variable ARIESIM_STRESS_SEEDS overrides it with a comma-separated list of
/// seeds and/or inclusive ranges ("7", "1,2,9", "1-32,41").
inline std::vector<uint64_t> StressSeeds(size_t n) {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("ARIESIM_STRESS_SEEDS");
  if (env != nullptr && *env != '\0') {
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok.empty()) continue;
      size_t dash = tok.find('-', 1);
      char* end = nullptr;
      uint64_t lo = std::strtoull(tok.c_str(), &end, 10);
      if (dash == std::string::npos) {
        seeds.push_back(lo);
      } else {
        uint64_t hi = std::strtoull(tok.c_str() + dash + 1, &end, 10);
        for (uint64_t s = lo; s <= hi && s - lo < 4096; ++s) seeds.push_back(s);
      }
    }
  }
  if (seeds.empty()) {
    for (uint64_t s = 1; s <= n; ++s) seeds.push_back(s);
  }
  return seeds;
}

/// Options for the fault harness: tiny pages (cheap SMOs), a pool small
/// enough that the workload steals/evicts dirty pages (exercising the
/// eviction write-back path under faults), and no index locks — the worker
/// threads use disjoint key ranges, and after a fail-stop fault freezes the
/// device a thread abandons its transaction without releasing locks, which
/// under next-key locking could park a neighbour forever.
inline Options FaultTestOptions() {
  Options o;
  o.page_size = 512;
  o.buffer_pool_frames = 32;
  o.fsync_log = false;
  o.index_locking = LockingProtocolKind::kNone;
  return o;
}

/// With ARIESIM_KEEP_CRASH_IMAGE set, copy the crashed database directory
/// to `<dir>.pre-recovery` before restart runs, so a failing seed's exact
/// on-disk image can be replayed offline (see docs/FAULT_INJECTION.md).
/// The copy survives the TempDir cleanup.
inline void MaybeKeepCrashImage(const std::string& dir) {
  if (std::getenv("ARIESIM_KEEP_CRASH_IMAGE") == nullptr) return;
  std::error_code ec;
  std::filesystem::remove_all(dir + ".pre-recovery", ec);
  std::filesystem::copy(dir, dir + ".pre-recovery", ec);
}

/// What the workload knows it did. `committed` is ground truth; each entry
/// of `indoubt` is one transaction whose Commit() returned an error — its
/// commit record sits in the possibly-torn log tail, so after recovery the
/// transaction must be either fully applied or fully rolled back.
struct WorkloadTrace {
  std::map<std::string, std::string> committed;
  std::vector<std::map<std::string, std::optional<std::string>>> indoubt;
  std::mutex mu;
};

struct WorkloadParams {
  int threads = 3;
  int txns_per_thread = 12;
  int keys_per_thread = 40;
  /// Fail-stop faults: once the injector trips, every worker winds down
  /// (further I/O fails anyway). Off for transient faults.
  bool stop_on_trip = true;
  /// Transient faults: retry Commit/Rollback until the error heals, so every
  /// transaction reaches a definite outcome. Off for fail-stop faults.
  bool retry_errors = false;
};

/// Run a randomized multi-threaded insert/delete workload against `table`.
/// Thread t only touches keys with prefix "t<t>-", so traces compose without
/// cross-thread write conflicts. Faults surface as op/commit errors; the
/// trace records how each transaction ended.
inline void RunFaultWorkload(Database* db, Table* table, uint64_t seed,
                             const WorkloadParams& p, WorkloadTrace* trace) {
  FaultInjector* inj = db->fault_injector();
  auto worker = [&](int t) {
    Random rnd(seed * 2654435761u + static_cast<uint64_t>(t));
    const std::string prefix = "t" + std::to_string(t) + "-";
    for (int txn_i = 0; txn_i < p.txns_per_thread; ++txn_i) {
      if (p.stop_on_trip && inj->tripped()) return;
      Transaction* txn = db->Begin();
      std::map<std::string, std::optional<std::string>> intents;
      bool op_failed = false;
      int nops = static_cast<int>(rnd.Range(1, 6));
      for (int op = 0; op < nops && !op_failed; ++op) {
        std::string key =
            prefix + rnd.Key(rnd.Uniform(static_cast<uint64_t>(
                                 p.keys_per_thread)),
                             3);
        Status s;
        if (rnd.Percent(60)) {
          std::string value = "v" + std::to_string(rnd.Uniform(1000));
          s = table->Insert(txn, {key, value});
          if (s.ok()) intents[key] = value;
          if (s.IsDuplicate()) s = Status::OK();  // key already live — fine
        } else {
          std::optional<Row> row;
          Rid rid;
          s = table->FetchByKey(txn, "pk", key, &row, &rid);
          if (s.ok() && row.has_value()) {
            s = table->Delete(txn, rid);
            if (s.ok()) intents[key] = std::nullopt;
          }
        }
        op_failed = !s.ok();
        if (!op_failed && rnd.Percent(15)) {
          (void)db->FlushPage(rnd.Uniform(100));  // steal: flush some page
        }
        if (!op_failed && rnd.Percent(5)) (void)db->Checkpoint();
      }
      if (op_failed) {
        // An op failed mid-transaction: nothing of it may survive. Under a
        // fail-stop fault the device is gone — abandon the transaction
        // in-flight (restart undo will erase it). Otherwise roll back,
        // retrying through transient errors.
        if (p.stop_on_trip && inj->tripped()) return;
        Status rb = db->Rollback(txn);
        for (int tries = 0; !rb.ok() && p.retry_errors && tries < 200;
             ++tries) {
          rb = db->Rollback(txn);
        }
        if (!rb.ok()) {
          if (p.stop_on_trip && inj->tripped()) return;
          ADD_FAILURE() << "rollback failed without an armed fault: "
                        << rb.ToString();
          return;
        }
        continue;
      }
      if (rnd.Percent(25)) {
        Status rb = db->Rollback(txn);
        for (int tries = 0; !rb.ok() && p.retry_errors && tries < 200;
             ++tries) {
          rb = db->Rollback(txn);
        }
        if (!rb.ok()) return;  // fail-stop: txn stays in flight
        continue;
      }
      Status c = db->Commit(txn);
      for (int tries = 0; !c.ok() && p.retry_errors && tries < 200; ++tries) {
        c = db->Commit(txn);
      }
      std::lock_guard<std::mutex> g(trace->mu);
      if (c.ok()) {
        for (auto& [k, v] : intents) {
          if (v.has_value()) {
            trace->committed[k] = *v;
          } else {
            trace->committed.erase(k);
          }
        }
      } else {
        trace->indoubt.push_back(std::move(intents));
        return;  // device is fail-stopped; nothing more this thread can do
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < p.threads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();
}

/// Verify `db` (recovered, or live with faults disarmed) against `trace`.
/// In-doubt transactions are resolved by probing their informative keys:
/// each must read back either entirely pre-transaction or entirely
/// post-transaction. Then every key of the resulting effective map must be
/// present with the right value, and the index/heap must contain nothing
/// else.
inline void VerifyDatabaseState(Database* db, WorkloadTrace* trace,
                                uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  Table* table = db->GetTable("t");
  ASSERT_NE(table, nullptr);
  BTree* tree = db->GetIndex("pk");
  ASSERT_NE(tree, nullptr);

  Transaction* check = db->Begin();
  auto fetch = [&](const std::string& k) -> std::optional<std::string> {
    std::optional<Row> row;
    Status s = table->FetchByKey(check, "pk", k, &row);
    EXPECT_TRUE(s.ok()) << "fetch " << k << ": " << s.ToString();
    if (!s.ok() || !row.has_value()) return std::nullopt;
    EXPECT_EQ(row->size(), 2u);
    return row->size() == 2 ? std::optional<std::string>((*row)[1])
                            : std::nullopt;
  };

  std::map<std::string, std::string> effective = trace->committed;
  for (size_t i = 0; i < trace->indoubt.size(); ++i) {
    const auto& intents = trace->indoubt[i];
    int verdict = -1;  // -1 unknown, 0 rolled back, 1 applied
    for (const auto& [k, v] : intents) {
      std::optional<std::string> base;
      auto it = trace->committed.find(k);
      if (it != trace->committed.end()) base = it->second;
      if (v == base) continue;  // uninformative intent
      std::optional<std::string> got = fetch(k);
      bool as_applied = got == v;
      bool as_base = got == base;
      ASSERT_TRUE(as_applied || as_base)
          << "in-doubt txn " << i << " key " << k << ": read back '"
          << got.value_or("<absent>") << "', expected '"
          << v.value_or("<absent>") << "' (applied) or '"
          << base.value_or("<absent>") << "' (rolled back)";
      int this_verdict = as_applied == as_base ? -1 : (as_applied ? 1 : 0);
      if (this_verdict < 0) continue;
      if (verdict < 0) verdict = this_verdict;
      ASSERT_EQ(verdict, this_verdict)
          << "in-doubt txn " << i << " recovered NON-ATOMICALLY at key " << k;
    }
    if (verdict == 1) {
      for (const auto& [k, v] : intents) {
        if (v.has_value()) {
          effective[k] = *v;
        } else {
          effective.erase(k);
        }
      }
    }
  }

  for (const auto& [k, v] : effective) {
    std::optional<std::string> got = fetch(k);
    EXPECT_EQ(got, std::optional<std::string>(v)) << "committed key " << k;
  }
  size_t keys = 0;
  ASSERT_OK(tree->Validate(&keys));
  EXPECT_EQ(keys, effective.size())
      << "index holds a different key count than the committed state";
  std::vector<std::pair<Rid, std::string>> rows;
  ASSERT_OK(table->heap()->ScanAll(&rows));
  EXPECT_EQ(rows.size(), effective.size())
      << "heap holds a different row count than the committed state";
  ASSERT_OK(db->Commit(check));
}

/// Scan the raw data file and return the ids of pages that would fail the
/// buffer pool's load-time CRC check — the same strict predicate FetchFrame
/// applies: a typed page must carry a matching checksum, an untyped page
/// must be entirely zero. Run it on the closed/crashed file to predict
/// restart's torn-page repairs.
inline std::vector<PageId> CorruptPagesOnDisk(const std::string& dir,
                                              size_t page_size) {
  std::vector<PageId> bad;
  std::ifstream f(dir + "/data.db", std::ios::binary | std::ios::ate);
  if (!f.is_open()) return bad;
  size_t size = static_cast<size_t>(f.tellg());
  f.seekg(0);
  std::string data(size, '\0');
  f.read(data.data(), static_cast<std::streamsize>(size));
  // Pad the trailing partial page with zeros, as DiskManager::ReadPage does.
  data.resize(((size + page_size - 1) / page_size) * page_size, '\0');
  for (size_t off = 0; off < data.size(); off += page_size) {
    PageView v(&data[off], page_size);
    bool corrupt;
    if (v.type() == PageType::kInvalid) {
      corrupt = std::string_view(&data[off], page_size)
                    .find_first_not_of('\0') != std::string_view::npos;
    } else {
      uint32_t crc = crc32c::Value(&data[off + 4], page_size - 4);
      corrupt = v.checksum() != crc32c::Mask(crc);
    }
    if (corrupt) bad.push_back(static_cast<PageId>(off / page_size));
  }
  return bad;
}

/// Restart bookkeeping must be internally consistent: the recovery stats and
/// the engine metrics count the same events.
inline void CheckRestartConsistency(Database* db, uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const RestartStats& st = db->restart_stats();
  Metrics& m = db->metrics();
  EXPECT_LE(st.redo_applied, st.redo_records)
      << "cannot apply more redo records than were scanned";
  EXPECT_EQ(m.redo_records_applied.load(), st.redo_applied);
  // Every scanned redoable record is applied, skipped, or consumed by a
  // torn-page repair (the triggering record: RepairPage rolls the whole
  // page forward, so redo just moves on past it).
  EXPECT_EQ(m.redo_records_applied.load() + m.redo_records_skipped.load() +
                st.torn_pages_repaired,
            st.redo_records);
  EXPECT_EQ(m.torn_pages_repaired.load(), st.torn_pages_repaired);
  // The metric counts records physically undone; the stat also counts the
  // CLRs and state markers traversed by the backward sweep.
  EXPECT_LE(m.undo_records.load(), st.undo_records);
}

}  // namespace testing
}  // namespace ariesim
