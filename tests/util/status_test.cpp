#include "common/status.h"

#include <gtest/gtest.h>

namespace ariesim {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_NE(s.ToString().find("missing key"), std::string::npos);
}

TEST(StatusTest, PredicatesAreExclusive) {
  EXPECT_TRUE(Status::Duplicate().IsDuplicate());
  EXPECT_FALSE(Status::Duplicate().IsNotFound());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::NoSpace().IsNoSpace());
  EXPECT_TRUE(Status::Retry().IsRetry());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kIOError);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

Status Helper(bool fail) {
  ARIES_RETURN_NOT_OK(fail ? Status::Busy() : Status::OK());
  return Status::OK();
}

Result<int> HelperAssign(bool fail) {
  ARIES_ASSIGN_OR_RETURN(
      int v, (fail ? Result<int>(Status::Busy()) : Result<int>(5)));
  return v + 1;
}

TEST(StatusTest, Macros) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_TRUE(Helper(true).IsBusy());
  EXPECT_EQ(HelperAssign(false).value(), 6);
  EXPECT_TRUE(HelperAssign(true).status().IsBusy());
}

}  // namespace
}  // namespace ariesim
