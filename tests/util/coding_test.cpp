#include "util/coding.h"

#include <gtest/gtest.h>

namespace ariesim {
namespace {

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 14u);
  EXPECT_EQ(DecodeFixed16(buf.data()), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed64(buf.data() + 6), 0x0123456789ABCDEFull);
}

TEST(CodingTest, EncodeInPlace) {
  char buf[8] = {0};
  EncodeFixed32(buf, 77);
  EXPECT_EQ(DecodeFixed32(buf), 77u);
  EncodeFixed64(buf, 1ull << 40);
  EXPECT_EQ(DecodeFixed64(buf), 1ull << 40);
}

TEST(CodingTest, LengthPrefixed) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  BufferReader r(buf);
  EXPECT_EQ(r.GetLengthPrefixed(), "hello");
  EXPECT_EQ(r.GetLengthPrefixed(), "");
  EXPECT_EQ(r.GetLengthPrefixed().size(), 1000u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CodingTest, ReaderSequence) {
  std::string buf;
  PutFixed16(&buf, 1);
  PutFixed32(&buf, 2);
  PutFixed64(&buf, 3);
  BufferReader r(buf);
  EXPECT_EQ(r.GetFixed16(), 1);
  EXPECT_EQ(r.GetFixed32(), 2u);
  EXPECT_EQ(r.GetFixed64(), 3u);
  EXPECT_TRUE(r.ok());
}

TEST(CodingTest, ReaderUnderflowSetsError) {
  std::string buf;
  PutFixed16(&buf, 9);
  BufferReader r(buf);
  (void)r.GetFixed64();  // too big
  EXPECT_FALSE(r.ok());
}

TEST(CodingTest, ReaderTruncatedLengthPrefix) {
  std::string buf;
  PutFixed32(&buf, 100);  // claims 100 bytes, provides none
  BufferReader r(buf);
  (void)r.GetLengthPrefixed();
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace ariesim
