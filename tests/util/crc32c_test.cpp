#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace ariesim {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C test vectors.
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8a9136aau);
  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones.data(), ones.size()), 0x62a8ab43u);
  const char* digits = "123456789";
  EXPECT_EQ(crc32c::Value(digits, 9), 0xe3069283u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(crc32c::Value("hello", 5), crc32c::Value("hellp", 5));
  EXPECT_NE(crc32c::Value("hello", 5), crc32c::Value("hello", 4));
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("payload", 7);
  uint32_t masked = crc32c::Mask(crc);
  EXPECT_NE(masked, crc);
  EXPECT_EQ(crc32c::Unmask(masked), crc);
}

TEST(Crc32cTest, ExtendViaInit) {
  // CRC of concatenation differs from naive chaining; just pin behavior:
  // Value with init continues the polynomial division deterministically.
  uint32_t a = crc32c::Value("ab", 2);
  uint32_t b1 = crc32c::Value("cd", 2, a);
  uint32_t b2 = crc32c::Value("cd", 2, a);
  EXPECT_EQ(b1, b2);
  EXPECT_NE(b1, crc32c::Value("cd", 2));
}

}  // namespace
}  // namespace ariesim
