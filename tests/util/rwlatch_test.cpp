#include "util/rwlatch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ariesim {
namespace {

TEST(RwLatchTest, SharedAllowsMultipleReaders) {
  RwLatch latch;
  latch.LockShared();
  EXPECT_TRUE(latch.TryLockShared());
  latch.UnlockShared();
  latch.UnlockShared();
}

TEST(RwLatchTest, ExclusiveExcludesEveryone) {
  RwLatch latch;
  latch.LockExclusive();
  EXPECT_FALSE(latch.TryLockShared());
  EXPECT_FALSE(latch.TryLockExclusive());
  latch.UnlockExclusive();
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

TEST(RwLatchTest, WaitingWriterBlocksNewReaders) {
  RwLatch latch;
  latch.LockShared();
  std::atomic<bool> writer_in{false};
  std::thread w([&] {
    latch.LockExclusive();
    writer_in = true;
    latch.UnlockExclusive();
  });
  // Give the writer time to queue, then a new reader must be refused
  // (writer priority prevents starvation).
  for (int i = 0; i < 1000 && latch.TryLockShared(); ++i) {
    latch.UnlockShared();
    std::this_thread::yield();
  }
  EXPECT_FALSE(writer_in.load());
  latch.UnlockShared();
  w.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(RwLatchTest, ExclusiveIsMutuallyExclusiveUnderContention) {
  RwLatch latch;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        latch.LockExclusive();
        ++counter;  // would race without mutual exclusion
        latch.UnlockExclusive();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(RwLatchTest, InstantDurationWaitsOutWriter) {
  RwLatch latch;
  latch.LockExclusive();
  std::atomic<bool> passed{false};
  std::thread t([&] {
    latch.LockInstant(LatchMode::kShared);  // must block until X released
    passed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(passed.load());
  latch.UnlockExclusive();
  t.join();
  EXPECT_TRUE(passed.load());
  // Latch fully free afterwards.
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

TEST(RwLatchTest, GuardReleasesOnDestruction) {
  RwLatch latch;
  {
    LatchGuard g(&latch, LatchMode::kExclusive);
    EXPECT_TRUE(g.held());
    EXPECT_FALSE(latch.TryLockShared());
  }
  EXPECT_TRUE(latch.TryLockShared());
  latch.UnlockShared();
}

TEST(RwLatchTest, GuardMoveTransfersOwnership) {
  RwLatch latch;
  LatchGuard g1(&latch, LatchMode::kShared);
  LatchGuard g2 = std::move(g1);
  EXPECT_FALSE(g1.held());
  EXPECT_TRUE(g2.held());
  g2.Release();
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

}  // namespace
}  // namespace ariesim
