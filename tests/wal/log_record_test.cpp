#include "wal/log_record.h"

#include <gtest/gtest.h>

namespace ariesim {
namespace {

LogRecord MakeUpdate() {
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.rm = RmId::kBtree;
  rec.op = 5;
  rec.txn_id = 42;
  rec.prev_lsn = 1000;
  rec.page_id = 17;
  rec.payload = "payload-bytes";
  return rec;
}

TEST(LogRecordTest, SerializeParseRoundTrip) {
  LogRecord rec = MakeUpdate();
  std::string buf;
  rec.AppendTo(&buf);
  ASSERT_EQ(buf.size(), rec.SerializedSize());

  LogRecord parsed;
  ASSERT_TRUE(LogRecord::Parse(buf, &parsed).ok());
  EXPECT_EQ(parsed.type, rec.type);
  EXPECT_EQ(parsed.rm, rec.rm);
  EXPECT_EQ(parsed.op, rec.op);
  EXPECT_EQ(parsed.txn_id, rec.txn_id);
  EXPECT_EQ(parsed.prev_lsn, rec.prev_lsn);
  EXPECT_EQ(parsed.page_id, rec.page_id);
  EXPECT_EQ(parsed.payload, rec.payload);
}

TEST(LogRecordTest, ClrCarriesUndoNext) {
  LogRecord rec = MakeUpdate();
  rec.type = LogType::kCompensation;
  rec.undo_next_lsn = 555;
  std::string buf;
  rec.AppendTo(&buf);
  LogRecord parsed;
  ASSERT_TRUE(LogRecord::Parse(buf, &parsed).ok());
  EXPECT_TRUE(parsed.IsClr());
  EXPECT_EQ(parsed.undo_next_lsn, 555u);
}

TEST(LogRecordTest, CorruptionDetected) {
  LogRecord rec = MakeUpdate();
  std::string buf;
  rec.AppendTo(&buf);
  buf[buf.size() / 2] ^= 0x40;  // flip a payload bit
  LogRecord parsed;
  EXPECT_EQ(LogRecord::Parse(buf, &parsed).code(), Code::kCorruption);
}

TEST(LogRecordTest, TruncationDetected) {
  LogRecord rec = MakeUpdate();
  std::string buf;
  rec.AppendTo(&buf);
  LogRecord parsed;
  EXPECT_FALSE(
      LogRecord::Parse(std::string_view(buf).substr(0, buf.size() - 3), &parsed)
          .ok());
  EXPECT_FALSE(LogRecord::Parse(std::string_view(buf).substr(0, 10), &parsed).ok());
}

TEST(LogRecordTest, Classification) {
  LogRecord upd = MakeUpdate();
  EXPECT_TRUE(upd.IsRedoable());
  EXPECT_TRUE(upd.IsUndoable());
  EXPECT_FALSE(upd.IsClr());

  LogRecord clr = MakeUpdate();
  clr.type = LogType::kCompensation;
  EXPECT_TRUE(clr.IsRedoable());
  EXPECT_FALSE(clr.IsUndoable());

  LogRecord dummy;
  dummy.type = LogType::kCompensation;
  dummy.rm = RmId::kNone;
  EXPECT_TRUE(dummy.IsDummyClr());
  EXPECT_FALSE(dummy.IsRedoable());

  LogRecord commit;
  commit.type = LogType::kCommit;
  EXPECT_FALSE(commit.IsRedoable());
  EXPECT_FALSE(commit.IsUndoable());
}

TEST(LogRecordTest, EmptyPayload) {
  LogRecord rec;
  rec.type = LogType::kCommit;
  std::string buf;
  rec.AppendTo(&buf);
  EXPECT_EQ(buf.size(), kLogHeaderSize);
  LogRecord parsed;
  ASSERT_TRUE(LogRecord::Parse(buf, &parsed).ok());
  EXPECT_TRUE(parsed.payload.empty());
}

TEST(LogRecordTest, BackToBackRecordsParseSequentially) {
  LogRecord a = MakeUpdate();
  LogRecord b = MakeUpdate();
  b.payload = "second";
  std::string buf;
  a.AppendTo(&buf);
  size_t second_off = buf.size();
  b.AppendTo(&buf);
  LogRecord pa, pb;
  ASSERT_TRUE(LogRecord::Parse(buf, &pa).ok());
  ASSERT_TRUE(
      LogRecord::Parse(std::string_view(buf).substr(second_off), &pb).ok());
  EXPECT_EQ(pa.payload, "payload-bytes");
  EXPECT_EQ(pb.payload, "second");
}

}  // namespace
}  // namespace ariesim
