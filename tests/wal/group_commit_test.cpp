// Group-commit correctness: the batching pipeline must not weaken the
// commit rule. N threads commit concurrently with group commit on (both
// flusher-thread and elected-leader modes); a seed-derived partial-flush
// fault kills the device mid-batch; after the crash every *acknowledged*
// commit must be recovered whole, every unacknowledged commit must be
// atomic (all or nothing), and the recovered database must hold no stray
// locks. Plus deterministic tests for flush coalescing, CommitAsync's
// lazy-durability window, error propagation to covered waiters, and the
// DiscardUnflushed-vs-flusher race.
//
// Reproduce one failing seed with:
//   ARIESIM_STRESS_SEEDS=<seed> ./wal_test
//       --gtest_filter='FlusherSeeds/GroupCommitDurabilityTest.*'
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "fault_util.h"
#include "test_util.h"
#include "util/fault_injector.h"
#include "util/random.h"
#include "wal/log_manager.h"

namespace ariesim {
namespace {

using testing::StressSeeds;
using testing::TempDir;

Options GroupCommitOptions(GroupCommitMode mode, uint32_t delay_us = 0) {
  Options o = testing::FaultTestOptions();
  o.wal_group_commit = true;
  o.wal_group_commit_mode = mode;
  o.wal_group_commit_delay_us = delay_us;
  return o;
}

// ---------------------------------------------------------------------------
// Seeded crash suite: concurrent commits, a partial-flush fault at batch
// granularity, then recovery. Ground truth: a commit is acknowledged iff
// Database::Commit returned OK.
// ---------------------------------------------------------------------------

class GroupCommitDurabilityTest
    : public ::testing::TestWithParam<std::pair<uint64_t, GroupCommitMode>> {};

TEST_P(GroupCommitDurabilityTest, AcknowledgedCommitsSurviveMidBatchCrash) {
  const auto [seed, mode] = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed));
  Random seed_rnd(seed);
  // Sometimes stretch the batch window so the fault lands inside a wide
  // multi-transaction batch.
  Options opts = GroupCommitOptions(
      mode, seed_rnd.Percent(40) ? static_cast<uint32_t>(seed_rnd.Range(50, 500))
                                 : 0);
  TempDir dir("group_commit_" + std::to_string(seed));

  // Each transaction inserts TWO keys sharing an id, so recovery atomicity
  // is observable: "a<id>" present iff "b<id>" present.
  std::mutex mu;
  std::map<std::string, std::string> acked;    // key -> value
  std::vector<std::pair<std::string, std::string>> indoubt;  // key pair
  {
    auto db = std::move(Database::Open(dir.path(), opts)).value();
    Table* table = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());

    // Arm a partial log flush at a seed-chosen batch. With group commit the
    // kLogFlush site now fires at *batch* granularity: the torn prefix may
    // contain several transactions' commit records.
    FaultSpec spec;
    spec.kind = FaultKind::kPartialFlush;
    spec.site = FaultSite::kLogFlush;
    spec.nth = seed_rnd.Range(1, 10);
    spec.keep_bytes = static_cast<uint32_t>(seed_rnd.Range(0, 2000));
    db->fault_injector()->Arm(spec);

    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Random rnd(seed * 31 + static_cast<uint64_t>(t));
        for (int i = 0; i < 24; ++i) {
          if (db->fault_injector()->tripped()) return;
          std::string id = std::to_string(t) + "-" + std::to_string(i);
          std::string value = "v" + std::to_string(rnd.Uniform(1000));
          Transaction* txn = db->Begin();
          Status s = table->Insert(txn, {"a" + id, value});
          if (s.ok()) s = table->Insert(txn, {"b" + id, value});
          if (!s.ok()) return;  // device frozen mid-op: txn stays in flight
          Status c = db->Commit(txn);
          std::lock_guard<std::mutex> g(mu);
          if (c.ok()) {
            acked["a" + id] = value;
            acked["b" + id] = value;
          } else {
            indoubt.emplace_back("a" + id, "b" + id);
            return;  // fail-stop: nothing more this thread can do
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_OK(db->SimulateTornCrash(TornCrashSpec{}));
    testing::MaybeKeepCrashImage(dir.path());
  }

  Options reopen = opts;
  auto db = std::move(Database::Open(dir.path(), reopen)).value();
  Table* table = db->GetTable("t");
  ASSERT_NE(table, nullptr);

  Transaction* check = db->Begin();
  auto fetch = [&](const std::string& k) -> std::optional<std::string> {
    std::optional<Row> row;
    Status s = table->FetchByKey(check, "pk", k, &row);
    EXPECT_TRUE(s.ok()) << "fetch " << k << ": " << s.ToString();
    if (!s.ok() || !row.has_value()) return std::nullopt;
    return (*row)[1];
  };

  // (1) Every acknowledged commit survived the crash.
  for (const auto& [k, v] : acked) {
    EXPECT_EQ(fetch(k), std::optional<std::string>(v))
        << "acknowledged key " << k << " lost by the crash";
  }
  // (2) Unacknowledged commits recovered atomically: both keys or neither.
  for (const auto& [ka, kb] : indoubt) {
    auto a = fetch(ka);
    auto b = fetch(kb);
    EXPECT_EQ(a.has_value(), b.has_value())
        << "in-doubt txn (" << ka << ", " << kb << ") recovered NON-ATOMICALLY";
  }
  ASSERT_OK(db->Commit(check));

  // (3) No transaction — acknowledged or not — leaks locks into the
  // recovered database: one writer can X-lock every surviving row.
  Transaction* sweep = db->Begin();
  std::vector<std::pair<Rid, std::string>> rows;
  ASSERT_OK(table->heap()->ScanAll(&rows));
  for (const auto& [rid, data] : rows) {
    ASSERT_OK(table->Delete(sweep, rid));
  }
  ASSERT_OK(db->Rollback(sweep));
}

std::vector<std::pair<uint64_t, GroupCommitMode>> SeedsWithMode(
    GroupCommitMode mode) {
  std::vector<std::pair<uint64_t, GroupCommitMode>> out;
  for (uint64_t s : StressSeeds(12)) out.emplace_back(s, mode);
  return out;
}

INSTANTIATE_TEST_SUITE_P(FlusherSeeds, GroupCommitDurabilityTest,
                         ::testing::ValuesIn(SeedsWithMode(
                             GroupCommitMode::kFlusher)));
INSTANTIATE_TEST_SUITE_P(LeaderSeeds, GroupCommitDurabilityTest,
                         ::testing::ValuesIn(SeedsWithMode(
                             GroupCommitMode::kLeader)));

// ---------------------------------------------------------------------------
// Deterministic pipeline behaviors.
// ---------------------------------------------------------------------------

LogRecord SmallUpdate(TxnId txn) {
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.rm = RmId::kHeap;
  rec.op = 1;
  rec.txn_id = txn;
  rec.page_id = 9;
  rec.payload = "x";
  return rec;
}

TEST(GroupCommitTest, AsyncRequestsCoalesceIntoOneBatch) {
  TempDir dir("gc_coalesce");
  Metrics m;
  LogManager lm(dir.path() + "/wal", &m, /*fsync=*/false);
  ASSERT_OK(lm.Open());
  lm.EnableGroupCommit(true, /*max_delay_us=*/0);
  // Queue 10 durability requests while no flusher runs: nothing may flush.
  for (int i = 0; i < 10; ++i) {
    LogRecord r = SmallUpdate(static_cast<TxnId>(i + 1));
    Lsn lsn = lm.Append(&r).value();
    lm.RequestFlush(lsn + r.SerializedSize());
  }
  EXPECT_EQ(m.log_flushes.load(), 0u);
  EXPECT_EQ(m.group_commit_txns.load(), 10u);
  // Start the flusher: all 10 queued requests must ride ONE batch.
  lm.StartFlusher();
  Lsn want = lm.next_lsn();
  for (int spins = 0; lm.flushed_lsn() < want && spins < 2000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(lm.flushed_lsn(), want);
  EXPECT_EQ(m.log_flushes.load(), 1u);
  EXPECT_EQ(m.group_commit_batches.load(), 1u);
  lm.Close();
}

TEST(GroupCommitTest, ConcurrentCommitersAllDurableAndCounted) {
  TempDir dir("gc_mt");
  for (GroupCommitMode mode :
       {GroupCommitMode::kFlusher, GroupCommitMode::kLeader}) {
    Metrics m;
    LogManager lm(dir.path() + "/wal_" +
                      std::to_string(static_cast<int>(mode)),
                  &m, /*fsync=*/false);
    ASSERT_OK(lm.Open());
    lm.EnableGroupCommit(true, 0);
    if (mode == GroupCommitMode::kFlusher) lm.StartFlusher();
    constexpr int kThreads = 8, kPer = 40;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&lm, t] {
        for (int i = 0; i < kPer; ++i) {
          LogRecord r = SmallUpdate(static_cast<TxnId>(t + 1));
          Lsn lsn = lm.Append(&r).value();
          ASSERT_OK(lm.CommitFlush(lsn + r.SerializedSize()));
          ASSERT_GE(lm.flushed_lsn(), lsn + r.SerializedSize());
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(m.group_commit_txns.load(), kThreads * kPer);
    EXPECT_GE(m.group_commit_batches.load(), 1u);
    EXPECT_LE(m.group_commit_batches.load(),
              static_cast<uint64_t>(kThreads) * kPer);
    lm.Close();
  }
}

TEST(GroupCommitTest, CommitAsyncReleasesLocksBeforeDurability) {
  TempDir dir("gc_async");
  // Leader mode and no flusher: an async commit's durability request sits
  // untouched, making the lazy window deterministic.
  Options opts = GroupCommitOptions(GroupCommitMode::kLeader);
  {
    auto db = std::move(Database::Open(dir.path(), opts)).value();
    Table* table = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    { // Durable base row.
      Transaction* txn = db->Begin();
      ASSERT_OK(table->Insert(txn, {"base", "v"}));
      ASSERT_OK(db->Commit(txn));
    }
    Transaction* lazy = db->Begin();
    ASSERT_OK(table->Insert(lazy, {"lazy", "v"}));
    ASSERT_OK(db->CommitAsync(lazy));
    // Locks were released before durability: another transaction can
    // X-lock the lazily committed row right now.
    Transaction* probe = db->Begin();
    std::optional<Row> row;
    Rid rid;
    ASSERT_OK(table->FetchByKey(probe, "pk", "lazy", &row, &rid));
    ASSERT_TRUE(row.has_value());
    ASSERT_OK(table->Delete(probe, rid));
    ASSERT_OK(db->Rollback(probe));
    // Crash inside the lazy window: the async commit must vanish whole.
    db->SimulateCrash();
  }
  auto db = std::move(Database::Open(dir.path(), opts)).value();
  Table* table = db->GetTable("t");
  Transaction* check = db->Begin();
  std::optional<Row> row;
  ASSERT_OK(table->FetchByKey(check, "pk", "base", &row));
  EXPECT_TRUE(row.has_value()) << "durable commit lost";
  row.reset();
  Status s = table->FetchByKey(check, "pk", "lazy", &row);
  ASSERT_OK(s);
  EXPECT_FALSE(row.has_value())
      << "async commit inside the lazy window must not survive a crash";
  ASSERT_OK(db->Commit(check));
}

TEST(GroupCommitTest, CommitAsyncHardensWithNextFlush) {
  TempDir dir("gc_async_hard");
  Options opts = GroupCommitOptions(GroupCommitMode::kFlusher);
  {
    auto db = std::move(Database::Open(dir.path(), opts)).value();
    Table* table = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    Transaction* lazy = db->Begin();
    ASSERT_OK(table->Insert(lazy, {"lazy", "v"}));
    ASSERT_OK(db->CommitAsync(lazy));
    ASSERT_OK(db->wal()->FlushAll());  // the flush the request was riding
    db->SimulateCrash();
  }
  auto db = std::move(Database::Open(dir.path(), opts)).value();
  Transaction* check = db->Begin();
  std::optional<Row> row;
  ASSERT_OK(db->GetTable("t")->FetchByKey(check, "pk", "lazy", &row));
  EXPECT_TRUE(row.has_value()) << "flushed async commit must be durable";
  ASSERT_OK(db->Commit(check));
}

TEST(GroupCommitTest, FlushErrorReachesEveryCoveredWaiter) {
  TempDir dir("gc_error");
  for (GroupCommitMode mode :
       {GroupCommitMode::kFlusher, GroupCommitMode::kLeader}) {
    Options opts = GroupCommitOptions(mode);
    auto db = std::move(
        Database::Open(dir.path() + std::to_string(static_cast<int>(mode)),
                       opts))
            .value();
    Table* table = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    FaultSpec spec;
    spec.kind = FaultKind::kPartialFlush;
    spec.site = FaultSite::kLogFlush;
    spec.nth = 0;
    spec.keep_bytes = 10;
    db->fault_injector()->Arm(spec);
    Transaction* txn = db->Begin();
    ASSERT_OK(table->Insert(txn, {"k", "v"}));
    Status c = db->Commit(txn);
    EXPECT_FALSE(c.ok())
        << "a commit whose batch flush failed must not be acknowledged";
    db->SimulateCrash();
  }
}

TEST(GroupCommitTest, DiscardUnflushedRacesFlusherSafely) {
  // The crash-simulation path (StopFlusher + DiscardUnflushed) must be
  // race-free against committers blocked on the group pipeline: everyone
  // returns (durable => OK, discarded => error), nothing hangs or tears.
  TempDir dir("gc_discard_race");
  for (int round = 0; round < 20; ++round) {
    Metrics m;
    LogManager lm(dir.path() + "/wal_" + std::to_string(round), &m,
                  /*fsync=*/false);
    ASSERT_OK(lm.Open());
    lm.EnableGroupCommit(true, /*max_delay_us=*/round % 2 ? 100 : 0);
    lm.StartFlusher();
    std::atomic<bool> stop{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
      ts.emplace_back([&lm, &stop, t] {
        while (!stop.load(std::memory_order_relaxed)) {
          LogRecord r = SmallUpdate(static_cast<TxnId>(t + 1));
          auto lsn = lm.Append(&r);
          if (!lsn.ok()) return;
          Lsn boundary = lsn.value() + r.SerializedSize();
          Status s = lm.CommitFlush(boundary);
          // OK means durable; an error means the tail was discarded out
          // from under us (checked by the whole-log scan below — the
          // boundary-vs-next_lsn relation is racy to re-probe here because
          // other threads keep appending).
          if (s.ok()) {
            ASSERT_GE(lm.flushed_lsn(), boundary);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2 + round % 5));
    lm.StopFlusher();       // what Database::SimulateCrash does...
    lm.DiscardUnflushed();  // ...before discarding the tail
    stop.store(true);
    for (auto& t : ts) t.join();
    // The surviving prefix must be a clean sequence of whole records.
    ASSERT_OK(lm.FlushAll());
    LogManager::Reader reader(&lm, kLogFilePrologue);
    LogRecord rec;
    while (reader.Next(&rec).ok()) {
    }
    EXPECT_EQ(reader.position(), lm.flushed_lsn());
    lm.Close();
  }
}

}  // namespace
}  // namespace ariesim
