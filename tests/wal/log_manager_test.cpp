#include "wal/log_manager.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "test_util.h"

namespace ariesim {
namespace {

using testing::TempDir;

LogRecord Update(TxnId txn, std::string payload) {
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.rm = RmId::kHeap;
  rec.op = 1;
  rec.txn_id = txn;
  rec.page_id = 9;
  rec.payload = std::move(payload);
  return rec;
}

TEST(LogManagerTest, AppendAssignsMonotonicOffsets) {
  TempDir dir("wal_append");
  Metrics m;
  LogManager lm(dir.path() + "/wal", &m, /*fsync=*/false);
  ASSERT_OK(lm.Open());
  LogRecord a = Update(1, "aaa");
  LogRecord b = Update(1, "bbbb");
  Lsn la = lm.Append(&a).value();
  Lsn lb = lm.Append(&b).value();
  EXPECT_EQ(la, kLogFilePrologue);
  EXPECT_EQ(lb, la + a.SerializedSize());
  EXPECT_EQ(lm.last_lsn(), lb);
}

TEST(LogManagerTest, ReadFromTailBufferAndFile) {
  TempDir dir("wal_read");
  Metrics m;
  LogManager lm(dir.path() + "/wal", &m, false);
  ASSERT_OK(lm.Open());
  LogRecord a = Update(1, "first");
  Lsn la = lm.Append(&a).value();
  // Unflushed: served from the tail buffer.
  LogRecord out;
  ASSERT_OK(lm.ReadRecord(la, &out));
  EXPECT_EQ(out.payload, "first");
  ASSERT_OK(lm.FlushAll());
  // Flushed: served from the file.
  ASSERT_OK(lm.ReadRecord(la, &out));
  EXPECT_EQ(out.payload, "first");
}

TEST(LogManagerTest, FlushToMakesDurablePrefix) {
  TempDir dir("wal_flushto");
  Metrics m;
  std::string path = dir.path() + "/wal";
  Lsn la, lb;
  {
    LogManager lm(path, &m, false);
    ASSERT_OK(lm.Open());
    LogRecord a = Update(1, "durable");
    LogRecord b = Update(1, "volatile");
    la = lm.Append(&a).value();
    ASSERT_OK(lm.FlushTo(la + a.SerializedSize()));
    lb = lm.Append(&b).value();
    lm.DiscardUnflushed();  // crash: b is lost
    EXPECT_EQ(lm.next_lsn(), lb);
  }
  {
    LogManager lm(path, &m, false);
    ASSERT_OK(lm.Open());
    LogRecord out;
    ASSERT_OK(lm.ReadRecord(la, &out));
    EXPECT_EQ(out.payload, "durable");
    EXPECT_TRUE(lm.ReadRecord(lb, &out).IsNotFound());
    EXPECT_EQ(lm.next_lsn(), lb);  // append cursor after the durable prefix
  }
}

TEST(LogManagerTest, ReaderScansAllRecords) {
  TempDir dir("wal_scan");
  Metrics m;
  LogManager lm(dir.path() + "/wal", &m, false);
  ASSERT_OK(lm.Open());
  for (int i = 0; i < 20; ++i) {
    LogRecord r = Update(static_cast<TxnId>(i + 1), "p" + std::to_string(i));
    ASSERT_TRUE(lm.Append(&r).ok());
  }
  ASSERT_OK(lm.FlushAll());
  LogManager::Reader reader(&lm, kLogFilePrologue);
  LogRecord rec;
  int n = 0;
  while (reader.Next(&rec).ok()) {
    EXPECT_EQ(rec.payload, "p" + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, 20);
}

TEST(LogManagerTest, TornTailTruncatedOnReopen) {
  TempDir dir("wal_torn");
  Metrics m;
  std::string path = dir.path() + "/wal";
  Lsn la;
  size_t a_size;
  {
    LogManager lm(path, &m, false);
    ASSERT_OK(lm.Open());
    LogRecord a = Update(1, "good");
    la = lm.Append(&a).value();
    a_size = a.SerializedSize();
    LogRecord b = Update(1, "to-be-torn");
    ASSERT_TRUE(lm.Append(&b).ok());
    ASSERT_OK(lm.FlushAll());
  }
  // Tear the second record.
  ::truncate(path.c_str(), static_cast<off_t>(la + a_size + 7));
  {
    LogManager lm(path, &m, false);
    ASSERT_OK(lm.Open());
    EXPECT_EQ(lm.next_lsn(), la + a_size);
    LogRecord out;
    ASSERT_OK(lm.ReadRecord(la, &out));
    EXPECT_EQ(out.payload, "good");
  }
}

TEST(LogManagerTest, TruncationAtEveryTailBoundary) {
  // One durable base record plus a 5-record tail. For every record boundary
  // b[j] of the tail, truncating the file to b[j] (and to b[j] + a few
  // mid-record bytes) must reopen with exactly the j complete tail records
  // surviving and the append cursor at the last complete boundary.
  TempDir dir("wal_bounds");
  Metrics m;
  std::string path = dir.path() + "/wal";
  constexpr int kTail = 5;
  std::vector<Lsn> bounds;  // bounds[j] = end of the j-th boundary
  {
    LogManager lm(path, &m, false);
    ASSERT_OK(lm.Open());
    LogRecord base = Update(1, "base-record");
    Lsn cursor = lm.Append(&base).value() + base.SerializedSize();
    bounds.push_back(cursor);
    for (int i = 0; i < kTail; ++i) {
      LogRecord r = Update(static_cast<TxnId>(i + 2),
                           "tail-" + std::string(1 + 7 * i, 'x'));
      cursor = lm.Append(&r).value() + r.SerializedSize();
      bounds.push_back(cursor);
    }
    ASSERT_OK(lm.FlushAll());
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream full;
  full << in.rdbuf();
  const std::string image = full.str();
  ASSERT_EQ(image.size(), bounds.back());

  auto reopen_at = [&](uint64_t size, Lsn want_next, int want_records) {
    SCOPED_TRACE("truncate to " + std::to_string(size));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(size));
    out.close();
    Metrics m2;
    LogManager lm(path, &m2, false);
    ASSERT_OK(lm.Open());
    EXPECT_EQ(lm.next_lsn(), want_next)
        << "append cursor must sit at the last complete record boundary";
    EXPECT_EQ(lm.flushed_lsn(), want_next);
    LogManager::Reader reader(&lm, kLogFilePrologue);
    LogRecord rec;
    int n = 0;
    while (reader.Next(&rec).ok()) ++n;
    EXPECT_EQ(n, want_records);
  };

  for (int j = kTail; j >= 0; --j) {
    // Exactly at the boundary: 1 base + j tail records survive.
    reopen_at(bounds[static_cast<size_t>(j)], bounds[static_cast<size_t>(j)],
              1 + j);
    // A few bytes into the next record (if any): the torn record is clipped.
    if (j < kTail) {
      for (uint64_t extra : {1ull, 5ull, 11ull}) {
        uint64_t size = bounds[static_cast<size_t>(j)] + extra;
        if (size >= bounds[static_cast<size_t>(j) + 1]) continue;
        reopen_at(size, bounds[static_cast<size_t>(j)], 1 + j);
      }
    }
  }
}

TEST(LogManagerTest, MasterRecordRoundTrip) {
  TempDir dir("wal_master");
  Metrics m;
  LogManager lm(dir.path() + "/wal", &m, false);
  ASSERT_OK(lm.Open());
  EXPECT_TRUE(lm.ReadMaster().status().IsNotFound());
  ASSERT_OK(lm.WriteMaster(12345));
  EXPECT_EQ(lm.ReadMaster().value(), 12345u);
  ASSERT_OK(lm.WriteMaster(99999));
  EXPECT_EQ(lm.ReadMaster().value(), 99999u);
}

TEST(LogManagerTest, TailBufferSpillsAtCapacity) {
  TempDir dir("wal_spill");
  Metrics m;
  // Tiny capacity: every few appends must spill to the file on their own.
  LogManager lm(dir.path() + "/wal", &m, /*fsync=*/false,
                /*buffer_capacity=*/256);
  ASSERT_OK(lm.Open());
  for (int i = 0; i < 100; ++i) {
    LogRecord r = Update(1, "payload-" + std::to_string(i));
    ASSERT_TRUE(lm.Append(&r).ok());
  }
  EXPECT_GT(lm.flushed_lsn(), kLogFilePrologue)
      << "appends beyond capacity must auto-spill";
  EXPECT_GT(m.log_flushes.load(), 10u);
  // Every record — spilled or still buffered — remains readable in order.
  LogManager::Reader reader(&lm, kLogFilePrologue);
  LogRecord rec;
  int n = 0;
  while (reader.Next(&rec).ok()) {
    EXPECT_EQ(rec.payload, "payload-" + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, 100);
}

TEST(LogManagerTest, ConcurrentAppendsAllSurvive) {
  TempDir dir("wal_mt");
  Metrics m;
  LogManager lm(dir.path() + "/wal", &m, false);
  ASSERT_OK(lm.Open());
  constexpr int kThreads = 4, kPer = 500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&lm, t] {
      for (int i = 0; i < kPer; ++i) {
        LogRecord r = Update(static_cast<TxnId>(t + 1), "x");
        ASSERT_TRUE(lm.Append(&r).ok());
      }
    });
  }
  for (auto& t : ts) t.join();
  ASSERT_OK(lm.FlushAll());
  LogManager::Reader reader(&lm, kLogFilePrologue);
  LogRecord rec;
  int n = 0;
  while (reader.Next(&rec).ok()) ++n;
  EXPECT_EQ(n, kThreads * kPer);
}

}  // namespace
}  // namespace ariesim
