// Table-level tests: multi-index maintenance, scans with stop conditions,
// nonunique secondary indexes, row arity, lock granularities.
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("table");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    table_ = db_->CreateTable("orders", 3).value();  // id, customer, amount
    ASSERT_TRUE(db_->CreateIndex("orders", "orders_pk", 0, true).ok());
    ASSERT_TRUE(db_->CreateIndex("orders", "orders_by_cust", 1, false).ok());
  }
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_;
};

TEST_F(TableTest, MultiIndexMaintenance) {
  Transaction* txn = db_->Begin();
  Rid rid;
  ASSERT_OK(table_->Insert(txn, {"o1", "alice", "100"}, &rid));
  ASSERT_OK(table_->Insert(txn, {"o2", "bob", "200"}));
  ASSERT_OK(table_->Insert(txn, {"o3", "alice", "300"}));
  ASSERT_OK(db_->Commit(txn));

  size_t pk_keys = 0, cust_keys = 0;
  ASSERT_OK(db_->GetIndex("orders_pk")->Validate(&pk_keys));
  ASSERT_OK(db_->GetIndex("orders_by_cust")->Validate(&cust_keys));
  EXPECT_EQ(pk_keys, 3u);
  EXPECT_EQ(cust_keys, 3u);

  // Delete maintains both indexes.
  Transaction* del = db_->Begin();
  ASSERT_OK(table_->Delete(del, rid));
  ASSERT_OK(db_->Commit(del));
  ASSERT_OK(db_->GetIndex("orders_pk")->Validate(&pk_keys));
  ASSERT_OK(db_->GetIndex("orders_by_cust")->Validate(&cust_keys));
  EXPECT_EQ(pk_keys, 2u);
  EXPECT_EQ(cust_keys, 2u);
}

TEST_F(TableTest, NonuniqueIndexScanByDuplicateValue) {
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 10; ++i) {
    std::string cust = (i % 2 == 0) ? "alice" : "bob";
    ASSERT_OK(table_->Insert(txn, {"o" + std::to_string(i), cust,
                                   std::to_string(i * 10)}));
  }
  ASSERT_OK(db_->Commit(txn));

  Transaction* q = db_->Begin();
  TableScan scan(table_, db_->GetIndex("orders_by_cust"));
  ASSERT_OK(scan.Open(q, "alice", FetchCond::kGe));
  ASSERT_OK(scan.SetStop("alice", /*inclusive=*/true));
  int alice_orders = 0;
  while (true) {
    Row row;
    Rid rid;
    bool done = false;
    ASSERT_OK(scan.Next(q, &row, &rid, &done));
    if (done) break;
    EXPECT_EQ(row[1], "alice");
    ++alice_orders;
  }
  EXPECT_EQ(alice_orders, 5);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(TableTest, RangeScanWithStops) {
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(table_->Insert(
        txn, {"o" + Random(0).Key(i, 3), "c", std::to_string(i)}));
  }
  ASSERT_OK(db_->Commit(txn));

  Transaction* q = db_->Begin();
  TableScan scan(table_, db_->GetIndex("orders_pk"));
  ASSERT_OK(scan.Open(q, "o" + Random(0).Key(10, 3), FetchCond::kGe));
  ASSERT_OK(scan.SetStop("o" + Random(0).Key(19, 3), /*inclusive=*/false));
  int n = 0;
  while (true) {
    Row row;
    Rid rid;
    bool done = false;
    ASSERT_OK(scan.Next(q, &row, &rid, &done));
    if (done) break;
    ++n;
  }
  EXPECT_EQ(n, 9);  // [10, 19) = 9 rows
  ASSERT_OK(db_->Commit(q));
}

TEST_F(TableTest, WrongArityRejected) {
  Transaction* txn = db_->Begin();
  EXPECT_EQ(table_->Insert(txn, {"too", "few"}).code(), Code::kInvalidArgument);
  EXPECT_EQ(table_->Insert(txn, {"way", "too", "many", "fields"}).code(),
            Code::kInvalidArgument);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(TableTest, EmptyScan) {
  Transaction* q = db_->Begin();
  TableScan scan(table_, db_->GetIndex("orders_pk"));
  ASSERT_OK(scan.Open(q, "", FetchCond::kGe));
  Row row;
  Rid rid;
  bool done = false;
  ASSERT_OK(scan.Next(q, &row, &rid, &done));
  EXPECT_TRUE(done);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(TableTest, PageGranularityLocking) {
  TempDir dir2("table_pg");
  Options o = SmallPageOptions();
  o.lock_granularity = LockGranularity::kPage;
  auto db2 = std::move(Database::Open(dir2.path(), o)).value();
  Table* t2 = db2->CreateTable("t", 2).value();
  ASSERT_TRUE(db2->CreateIndex("t", "pk", 0, true).ok());
  Transaction* txn = db2->Begin();
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(t2->Insert(txn, {"k" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db2->Commit(txn));
  Transaction* q = db2->Begin();
  std::optional<Row> row;
  ASSERT_OK(t2->FetchByKey(q, "pk", "k7", &row));
  EXPECT_TRUE(row.has_value());
  ASSERT_OK(db2->Commit(q));
  size_t keys = 0;
  ASSERT_OK(db2->GetIndex("pk")->Validate(&keys));
  EXPECT_EQ(keys, 30u);
}

TEST_F(TableTest, TableGranularityLocking) {
  TempDir dir2("table_tg");
  Options o = SmallPageOptions();
  o.lock_granularity = LockGranularity::kTable;
  auto db2 = std::move(Database::Open(dir2.path(), o)).value();
  Table* t2 = db2->CreateTable("t", 2).value();
  ASSERT_TRUE(db2->CreateIndex("t", "pk", 0, true).ok());
  Transaction* txn = db2->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(t2->Insert(txn, {"k" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db2->Commit(txn));
  Transaction* q = db2->Begin();
  std::optional<Row> row;
  ASSERT_OK(t2->FetchByKey(q, "pk", "k3", &row));
  EXPECT_TRUE(row.has_value());
  ASSERT_OK(db2->Commit(q));
}

TEST_F(TableTest, ScanSurvivesCrashRecovery) {
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(table_->Insert(
        txn, {"o" + Random(0).Key(i, 3), "c" + std::to_string(i % 3),
              std::to_string(i)}));
  }
  ASSERT_OK(db_->Commit(txn));
  db_->SimulateCrash();

  db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
  table_ = db_->GetTable("orders");
  Transaction* q = db_->Begin();
  TableScan scan(table_, db_->GetIndex("orders_pk"));
  ASSERT_OK(scan.Open(q, "", FetchCond::kGe));
  int n = 0;
  while (true) {
    Row row;
    Rid rid;
    bool done = false;
    ASSERT_OK(scan.Next(q, &row, &rid, &done));
    if (done) break;
    ++n;
  }
  EXPECT_EQ(n, 40);
  ASSERT_OK(db_->Commit(q));
}

}  // namespace
}  // namespace ariesim
