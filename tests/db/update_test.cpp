// Table::Update tests: in-place heap update, index maintenance only for
// changed key columns, statement atomicity, rollback, and crash recovery of
// updates. Plus prefix fetch (paper §1.1 partial key values).
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("update");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    table_ = db_->CreateTable("t", 3).value();  // id, category, payload
    ASSERT_TRUE(db_->CreateIndex("t", "pk", 0, true).ok());
    ASSERT_TRUE(db_->CreateIndex("t", "by_cat", 1, false).ok());
  }
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_;
};

TEST_F(UpdateTest, NonKeyColumnUpdateLeavesIndexesAlone) {
  Transaction* txn = db_->Begin();
  Rid rid;
  ASSERT_OK(table_->Insert(txn, {"id1", "catA", "v1"}, &rid));
  ASSERT_OK(db_->Commit(txn));
  size_t pk_before = 0, cat_before = 0;
  ASSERT_OK(db_->GetIndex("pk")->Validate(&pk_before));
  ASSERT_OK(db_->GetIndex("by_cat")->Validate(&cat_before));

  Transaction* u = db_->Begin();
  uint64_t log_recs_before = db_->metrics().log_records.load();
  ASSERT_OK(table_->Update(u, rid, {"id1", "catA", "v2"}));
  // Only the heap update record (plus commit bookkeeping) — no index ops.
  EXPECT_LE(db_->metrics().log_records.load() - log_recs_before, 1u);
  ASSERT_OK(db_->Commit(u));

  Transaction* q = db_->Begin();
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(q, "pk", "id1", &row));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[2], "v2");
  ASSERT_OK(db_->Commit(q));
}

TEST_F(UpdateTest, KeyColumnUpdateMovesIndexEntry) {
  Transaction* txn = db_->Begin();
  Rid rid;
  ASSERT_OK(table_->Insert(txn, {"id1", "catA", "v"}, &rid));
  ASSERT_OK(db_->Commit(txn));

  Transaction* u = db_->Begin();
  ASSERT_OK(table_->Update(u, rid, {"id1", "catB", "v"}));
  ASSERT_OK(db_->Commit(u));

  Transaction* q = db_->Begin();
  FetchResult r;
  ASSERT_OK(db_->GetIndex("by_cat")->Fetch(q, "catA", FetchCond::kEq, &r));
  EXPECT_FALSE(r.found) << "old key must be gone";
  ASSERT_OK(db_->GetIndex("by_cat")->Fetch(q, "catB", FetchCond::kEq, &r));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.rid, rid);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(UpdateTest, UpdateRolledBack) {
  Transaction* txn = db_->Begin();
  Rid rid;
  ASSERT_OK(table_->Insert(txn, {"id1", "catA", "v1"}, &rid));
  ASSERT_OK(db_->Commit(txn));

  Transaction* u = db_->Begin();
  ASSERT_OK(table_->Update(u, rid, {"id1", "catB", "v2"}));
  ASSERT_OK(db_->Rollback(u));

  Transaction* q = db_->Begin();
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(q, "pk", "id1", &row));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1], "catA");
  EXPECT_EQ((*row)[2], "v1");
  FetchResult r;
  ASSERT_OK(db_->GetIndex("by_cat")->Fetch(q, "catB", FetchCond::kEq, &r));
  EXPECT_FALSE(r.found);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(UpdateTest, UniqueViolationOnKeyUpdateIsStatementAtomic) {
  Transaction* txn = db_->Begin();
  Rid rid1;
  ASSERT_OK(table_->Insert(txn, {"id1", "catA", "v"}, &rid1));
  ASSERT_OK(table_->Insert(txn, {"id2", "catB", "v"}));
  ASSERT_OK(db_->Commit(txn));

  Transaction* u = db_->Begin();
  Status s = table_->Update(u, rid1, {"id2", "catA", "v"});  // pk collision
  EXPECT_TRUE(s.IsDuplicate()) << s.ToString();
  // Statement rolled back: id1 still intact, transaction still usable.
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(u, "pk", "id1", &row));
  EXPECT_TRUE(row.has_value());
  ASSERT_OK(db_->Commit(u));
  size_t keys = 0;
  ASSERT_OK(db_->GetIndex("pk")->Validate(&keys));
  EXPECT_EQ(keys, 2u);
}

TEST_F(UpdateTest, UpdateSurvivesCrash) {
  Rid rid;
  {
    Transaction* txn = db_->Begin();
    ASSERT_OK(table_->Insert(txn, {"id1", "catA", "v1"}, &rid));
    ASSERT_OK(db_->Commit(txn));
    Transaction* u = db_->Begin();
    ASSERT_OK(table_->Update(u, rid, {"id1", "catC", "v9"}));
    ASSERT_OK(db_->Commit(u));
    db_->SimulateCrash();
  }
  db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
  table_ = db_->GetTable("t");
  Transaction* q = db_->Begin();
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(q, "by_cat", "catC", &row));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[2], "v9");
  ASSERT_OK(db_->Commit(q));
}

TEST_F(UpdateTest, PrefixFetchFindsMatchingKey) {
  Transaction* txn = db_->Begin();
  ASSERT_OK(table_->Insert(txn, {"user-001", "c", "v"}));
  ASSERT_OK(table_->Insert(txn, {"user-002", "c", "v"}));
  ASSERT_OK(table_->Insert(txn, {"widget-9", "c", "v"}));
  ASSERT_OK(db_->Commit(txn));

  Transaction* q = db_->Begin();
  BTree* pk = db_->GetIndex("pk");
  FetchResult r;
  // Paper §1.1: "Given a key value or a partial key value (its prefix),
  // check if it is in the index and fetch the full key."
  ASSERT_OK(pk->Fetch(q, "user-", FetchCond::kPrefix, &r));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "user-001");
  ASSERT_OK(pk->Fetch(q, "widget", FetchCond::kPrefix, &r));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "widget-9");
  ASSERT_OK(pk->Fetch(q, "zebra", FetchCond::kPrefix, &r));
  EXPECT_FALSE(r.found) << "no key with that prefix";
  ASSERT_OK(pk->Fetch(q, "vXX", FetchCond::kPrefix, &r));
  EXPECT_FALSE(r.found) << "next key (widget-9) does not share the prefix";
  ASSERT_OK(db_->Commit(q));
}

}  // namespace
}  // namespace ariesim
