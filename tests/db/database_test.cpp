// End-to-end Database tests: DDL, CRUD through indexes, commit/rollback
// semantics, statement-level atomicity, reopen persistence.
#include "db/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

TEST(DatabaseTest, OpenFreshAndReopen) {
  TempDir dir("db_open");
  {
    auto db = Database::Open(dir.path(), SmallPageOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
  }
  {
    auto db = Database::Open(dir.path(), SmallPageOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
  }
}

TEST(DatabaseTest, CreateTableAndIndex) {
  TempDir dir("db_ddl");
  auto dbr = Database::Open(dir.path(), SmallPageOptions());
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  auto table = db->CreateTable("accounts", 2);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  auto index = db->CreateIndex("accounts", "accounts_pk", 0, /*unique=*/true);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_NE(db->GetTable("accounts"), nullptr);
  EXPECT_NE(db->GetIndex("accounts_pk"), nullptr);
  EXPECT_EQ(db->GetTable("nope"), nullptr);
  // Duplicate DDL is rejected.
  EXPECT_TRUE(db->CreateTable("accounts", 2).status().IsDuplicate());
  EXPECT_TRUE(
      db->CreateIndex("accounts", "accounts_pk", 0, true).status().IsDuplicate());
}

TEST(DatabaseTest, InsertFetchDeleteCommitted) {
  TempDir dir("db_crud");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* t = db->CreateTable("kv", 2).value();
  ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());

  Transaction* txn = db->Begin();
  Rid rid;
  ASSERT_OK(t->Insert(txn, {"alpha", "1"}, &rid));
  ASSERT_OK(t->Insert(txn, {"beta", "2"}));
  ASSERT_OK(db->Commit(txn));

  Transaction* txn2 = db->Begin();
  std::optional<Row> row;
  ASSERT_OK(t->FetchByKey(txn2, "kv_pk", "alpha", &row));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1], "1");
  ASSERT_OK(t->FetchByKey(txn2, "kv_pk", "gamma", &row));
  EXPECT_FALSE(row.has_value());
  ASSERT_OK(t->Delete(txn2, rid));
  ASSERT_OK(t->FetchByKey(txn2, "kv_pk", "alpha", &row));
  EXPECT_FALSE(row.has_value());
  ASSERT_OK(db->Commit(txn2));
}

TEST(DatabaseTest, RollbackUndoesEverything) {
  TempDir dir("db_rb");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* t = db->CreateTable("kv", 2).value();
  ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());

  Transaction* t1 = db->Begin();
  ASSERT_OK(t->Insert(t1, {"stays", "x"}));
  ASSERT_OK(db->Commit(t1));

  Transaction* t2 = db->Begin();
  Rid rid;
  std::optional<Row> row;
  ASSERT_OK(t->Insert(t2, {"goes", "y"}));
  ASSERT_OK(t->FetchByKey(t2, "kv_pk", "stays", &row, &rid));
  ASSERT_TRUE(row.has_value());
  ASSERT_OK(t->Delete(t2, rid));
  ASSERT_OK(db->Rollback(t2));

  Transaction* t3 = db->Begin();
  ASSERT_OK(t->FetchByKey(t3, "kv_pk", "goes", &row));
  EXPECT_FALSE(row.has_value()) << "rolled-back insert leaked";
  ASSERT_OK(t->FetchByKey(t3, "kv_pk", "stays", &row));
  EXPECT_TRUE(row.has_value()) << "rolled-back delete not undone";
  ASSERT_OK(db->Commit(t3));

  size_t keys = 0;
  ASSERT_OK(db->GetIndex("kv_pk")->Validate(&keys));
  EXPECT_EQ(keys, 1u);
}

TEST(DatabaseTest, UniqueViolationIsStatementAtomic) {
  TempDir dir("db_uni");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* t = db->CreateTable("kv", 2).value();
  ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());

  Transaction* t1 = db->Begin();
  ASSERT_OK(t->Insert(t1, {"k", "v1"}));
  ASSERT_OK(db->Commit(t1));

  Transaction* t2 = db->Begin();
  Status s = t->Insert(t2, {"k", "v2"});
  EXPECT_TRUE(s.IsDuplicate()) << s.ToString();
  // The failed statement's heap insert must have been rolled back; the
  // transaction itself stays usable.
  ASSERT_OK(t->Insert(t2, {"k2", "v2"}));
  ASSERT_OK(db->Commit(t2));

  Transaction* t3 = db->Begin();
  std::optional<Row> row;
  ASSERT_OK(t->FetchByKey(t3, "kv_pk", "k", &row));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1], "v1");
  ASSERT_OK(db->Commit(t3));

  std::vector<std::pair<Rid, std::string>> rows;
  ASSERT_OK(t->heap()->ScanAll(&rows));
  EXPECT_EQ(rows.size(), 2u) << "failed statement leaked a heap record";
}

TEST(DatabaseTest, PersistsAcrossCleanReopen) {
  TempDir dir("db_persist");
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("kv", 2).value();
    ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());
    Transaction* txn = db->Begin();
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(t->Insert(txn, {"key" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->Commit(txn));
  }
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->GetTable("kv");
    ASSERT_NE(t, nullptr);
    Transaction* txn = db->Begin();
    std::optional<Row> row;
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(t->FetchByKey(txn, "kv_pk", "key" + std::to_string(i), &row));
      EXPECT_TRUE(row.has_value()) << "key" << i;
    }
    ASSERT_OK(db->Commit(txn));
    size_t keys = 0;
    ASSERT_OK(db->GetIndex("kv_pk")->Validate(&keys));
    EXPECT_EQ(keys, 50u);
  }
}

TEST(DatabaseTest, SavepointPartialRollback) {
  TempDir dir("db_sp");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* t = db->CreateTable("kv", 2).value();
  ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());

  Transaction* txn = db->Begin();
  ASSERT_OK(t->Insert(txn, {"before", "1"}));
  Lsn sp = txn->Savepoint();
  ASSERT_OK(t->Insert(txn, {"after1", "2"}));
  ASSERT_OK(t->Insert(txn, {"after2", "3"}));
  ASSERT_OK(db->RollbackToSavepoint(txn, sp));
  ASSERT_OK(t->Insert(txn, {"after3", "4"}));
  ASSERT_OK(db->Commit(txn));

  Transaction* check = db->Begin();
  std::optional<Row> row;
  ASSERT_OK(t->FetchByKey(check, "kv_pk", "before", &row));
  EXPECT_TRUE(row.has_value());
  ASSERT_OK(t->FetchByKey(check, "kv_pk", "after1", &row));
  EXPECT_FALSE(row.has_value());
  ASSERT_OK(t->FetchByKey(check, "kv_pk", "after2", &row));
  EXPECT_FALSE(row.has_value());
  ASSERT_OK(t->FetchByKey(check, "kv_pk", "after3", &row));
  EXPECT_TRUE(row.has_value());
  ASSERT_OK(db->Commit(check));
}

TEST(DatabaseTest, IndexBackfillOnCreateIndex) {
  TempDir dir("db_backfill");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* t = db->CreateTable("kv", 2).value();
  Transaction* txn = db->Begin();
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(t->Insert(txn, {"k" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db->Commit(txn));
  ASSERT_TRUE(db->CreateIndex("kv", "kv_late", 0, false).ok());
  size_t keys = 0;
  ASSERT_OK(db->GetIndex("kv_late")->Validate(&keys));
  EXPECT_EQ(keys, 30u);
}

}  // namespace
}  // namespace ariesim
