// End-to-end smoke test of the ariesh shell binary: pipes a script through
// the REPL and checks the observable outputs (DDL, DML, txn brackets,
// crash + recovery, validation).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace ariesim {
namespace {

std::string FindShell() {
  for (const char* cand :
       {"./examples/ariesh", "examples/ariesh", "../examples/ariesh"}) {
    if (std::filesystem::exists(cand)) return cand;
  }
  return "";
}

std::string RunShell(const std::string& dir, const std::string& script) {
  std::string shell = FindShell();
  std::string cmd = "printf '%b' \"" + script + "\" | " + shell + " " + dir +
                    " 2>&1";
  FILE* p = ::popen(cmd.c_str(), "r");
  EXPECT_NE(p, nullptr);
  std::string out;
  char buf[512];
  while (p != nullptr && std::fgets(buf, sizeof(buf), p) != nullptr) out += buf;
  if (p != nullptr) ::pclose(p);
  return out;
}

TEST(ShellSmokeTest, EndToEndScript) {
  if (FindShell().empty()) {
    GTEST_SKIP() << "ariesh binary not found relative to cwd";
  }
  std::string dir =
      (std::filesystem::temp_directory_path() / "ariesh_smoke").string();
  std::filesystem::remove_all(dir);

  std::string out = RunShell(
      dir,
      "create table users 2\\n"
      "create index users_pk on users 0 unique\\n"
      "insert users alice 30\\n"
      "insert users bob 40\\n"
      "get users users_pk alice\\n"
      "begin\\n"
      "insert users carol 50\\n"
      "rollback\\n"
      "get users users_pk carol\\n"
      "scan users users_pk a z\\n"
      "validate users_pk\\n"
      "crash\\n"
      "get users users_pk bob\\n"
      "quit\\n");

  EXPECT_NE(out.find("alice 30"), std::string::npos) << out;
  EXPECT_NE(out.find("not found"), std::string::npos)
      << "rolled-back carol should be gone:\n" << out;
  EXPECT_NE(out.find("2 row(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("OK (2 keys)"), std::string::npos) << out;
  EXPECT_NE(out.find("recovered:"), std::string::npos) << out;
  EXPECT_NE(out.find("bob 40"), std::string::npos)
      << "bob must survive the crash:\n" << out;
}

}  // namespace
}  // namespace ariesim
