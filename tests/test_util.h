// Shared test scaffolding: unique temp directories and common option sets.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/config.h"
#include "common/status.h"

namespace ariesim {
namespace testing {

/// Unique per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("ariesim_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Tiny pages force SMOs with small workloads; no fsync keeps tests fast
/// (durability boundaries are still exercised — SimulateCrash discards
/// exactly the unflushed tail either way).
inline Options SmallPageOptions() {
  Options o;
  o.page_size = 512;
  o.buffer_pool_frames = 512;
  o.fsync_log = false;
  return o;
}

inline Options DefaultOptions() {
  Options o;
  o.buffer_pool_frames = 512;
  o.fsync_log = false;
  return o;
}

#define ASSERT_OK(expr)                                       \
  do {                                                        \
    ::ariesim::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << "status: " << _st.ToString();    \
  } while (0)

#define EXPECT_OK(expr)                                       \
  do {                                                        \
    ::ariesim::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << "status: " << _st.ToString();    \
  } while (0)

}  // namespace testing
}  // namespace ariesim
