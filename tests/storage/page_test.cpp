#include "storage/page.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ariesim {
namespace {

constexpr size_t kPage = 512;

class PageTest : public ::testing::Test {
 protected:
  PageTest() : buf_(kPage, '\0'), v_(buf_.data(), kPage) {
    v_.Init(7, PageType::kBtreeLeaf, 3, 0);
  }
  std::string buf_;
  PageView v_;
};

TEST_F(PageTest, InitSetsHeader) {
  EXPECT_EQ(v_.page_id(), 7u);
  EXPECT_EQ(v_.type(), PageType::kBtreeLeaf);
  EXPECT_EQ(v_.owner_id(), 3u);
  EXPECT_EQ(v_.level(), 0);
  EXPECT_EQ(v_.slot_count(), 0);
  EXPECT_EQ(v_.page_lsn(), kNullLsn);
  EXPECT_EQ(v_.next_page(), kInvalidPageId);
  EXPECT_EQ(v_.prev_page(), kInvalidPageId);
  EXPECT_FALSE(v_.sm_bit());
  EXPECT_FALSE(v_.delete_bit());
}

TEST_F(PageTest, FlagBits) {
  v_.set_sm_bit(true);
  EXPECT_TRUE(v_.sm_bit());
  EXPECT_FALSE(v_.delete_bit());
  v_.set_delete_bit(true);
  EXPECT_TRUE(v_.sm_bit());
  EXPECT_TRUE(v_.delete_bit());
  v_.set_sm_bit(false);
  EXPECT_FALSE(v_.sm_bit());
  EXPECT_TRUE(v_.delete_bit());
}

TEST_F(PageTest, InsertCellSortedDiscipline) {
  ASSERT_TRUE(v_.InsertCellAt(0, "bb").ok());
  ASSERT_TRUE(v_.InsertCellAt(1, "dd").ok());
  ASSERT_TRUE(v_.InsertCellAt(1, "cc").ok());  // shifts dd right
  ASSERT_TRUE(v_.InsertCellAt(0, "aa").ok());
  ASSERT_EQ(v_.slot_count(), 4);
  EXPECT_EQ(v_.Cell(0), "aa");
  EXPECT_EQ(v_.Cell(1), "bb");
  EXPECT_EQ(v_.Cell(2), "cc");
  EXPECT_EQ(v_.Cell(3), "dd");
}

TEST_F(PageTest, RemoveCellShiftsSlots) {
  ASSERT_TRUE(v_.InsertCellAt(0, "aa").ok());
  ASSERT_TRUE(v_.InsertCellAt(1, "bb").ok());
  ASSERT_TRUE(v_.InsertCellAt(2, "cc").ok());
  v_.RemoveCellAt(1);
  ASSERT_EQ(v_.slot_count(), 2);
  EXPECT_EQ(v_.Cell(0), "aa");
  EXPECT_EQ(v_.Cell(1), "cc");
}

TEST_F(PageTest, FillUntilNoSpaceThenCompactAfterRemovals) {
  std::string cell(40, 'x');
  int inserted = 0;
  while (v_.InsertCellAt(static_cast<uint16_t>(inserted), cell).ok()) {
    ++inserted;
  }
  EXPECT_GT(inserted, 5);
  // Remove every other cell; the freed bytes are fragmented.
  for (int i = inserted - 1; i >= 0; i -= 2) {
    v_.RemoveCellAt(static_cast<uint16_t>(i));
  }
  // Now a fresh insert must succeed through compaction.
  EXPECT_TRUE(v_.InsertCellAt(0, cell).ok());
}

TEST_F(PageTest, ReplaceCellGrowAndShrink) {
  ASSERT_TRUE(v_.InsertCellAt(0, "short").ok());
  ASSERT_TRUE(v_.ReplaceCellAt(0, "a-much-longer-cell-content").ok());
  EXPECT_EQ(v_.Cell(0), "a-much-longer-cell-content");
  ASSERT_TRUE(v_.ReplaceCellAt(0, "tiny").ok());
  EXPECT_EQ(v_.Cell(0), "tiny");
}

TEST_F(PageTest, HeapAppendAndTombstone) {
  v_.Init(7, PageType::kHeap, 3, 0);
  auto s0 = v_.AppendCell("record-zero");
  auto s1 = v_.AppendCell("record-one");
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s0.value(), 0);
  EXPECT_EQ(s1.value(), 1);
  v_.TombstoneSlot(0);
  EXPECT_TRUE(v_.SlotTombstoned(0));
  EXPECT_FALSE(v_.SlotDead(0));
  // Bytes retained: revive restores the record.
  v_.ReviveSlot(0);
  EXPECT_FALSE(v_.SlotTombstoned(0));
  EXPECT_EQ(v_.Cell(0), "record-zero");
}

TEST_F(PageTest, TombstoneSurvivesCompaction) {
  v_.Init(7, PageType::kHeap, 3, 0);
  ASSERT_TRUE(v_.AppendCell(std::string(50, 'a')).ok());
  ASSERT_TRUE(v_.AppendCell(std::string(50, 'b')).ok());
  ASSERT_TRUE(v_.AppendCell(std::string(50, 'c')).ok());
  v_.TombstoneSlot(1);
  v_.PurgeSlot(2);  // purged bytes are reclaimable
  v_.Compact();
  EXPECT_TRUE(v_.SlotTombstoned(1));
  EXPECT_EQ(v_.Cell(1), std::string(50, 'b'));
  EXPECT_TRUE(v_.SlotDead(2));
  EXPECT_EQ(v_.Cell(0), std::string(50, 'a'));
}

TEST_F(PageTest, PurgedSlotReusableViaPlaceCellAt) {
  v_.Init(7, PageType::kHeap, 3, 0);
  ASSERT_TRUE(v_.AppendCell("old").ok());
  v_.PurgeSlot(0);
  ASSERT_TRUE(v_.PlaceCellAt(0, "new").ok());
  EXPECT_EQ(v_.Cell(0), "new");
  EXPECT_FALSE(v_.SlotDead(0));
}

TEST_F(PageTest, FreeSpaceAccounting) {
  size_t before = v_.FreeSpaceForNewCell();
  ASSERT_TRUE(v_.InsertCellAt(0, std::string(100, 'x')).ok());
  size_t after = v_.FreeSpaceForNewCell();
  EXPECT_EQ(before - after, 100 + kSlotSize);
  v_.RemoveCellAt(0);
  EXPECT_EQ(v_.FreeSpaceForNewCell(), before);
}

TEST_F(PageTest, NoSpaceReported) {
  std::string big(kPage, 'x');  // larger than any page can hold
  EXPECT_TRUE(v_.InsertCellAt(0, big).IsNoSpace());
}

}  // namespace
}  // namespace ariesim
