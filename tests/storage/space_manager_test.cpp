// Space-map tests: allocation, free, transactional undo of both, and the
// order-independence that motivates the bitmap design (see space_manager.h).
#include "storage/space_manager.h"

#include <gtest/gtest.h>

#include <set>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class SpaceManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("space");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
  }
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(SpaceManagerTest, AllocateDistinctPages) {
  Transaction* txn = db_->Begin();
  std::set<PageId> ids;
  for (int i = 0; i < 50; ++i) {
    auto id = db_->space()->AllocatePage(txn);
    ASSERT_TRUE(id.ok());
    EXPECT_GE(id.value(), kSpaceMapPages);
    EXPECT_TRUE(ids.insert(id.value()).second) << "duplicate allocation";
  }
  ASSERT_OK(db_->Commit(txn));
  for (PageId id : ids) {
    EXPECT_TRUE(db_->space()->IsAllocated(id).value());
  }
}

TEST_F(SpaceManagerTest, FreeMakesPageReusable) {
  Transaction* txn = db_->Begin();
  PageId a = db_->space()->AllocatePage(txn).value();
  ASSERT_OK(db_->space()->FreePage(txn, a));
  ASSERT_OK(db_->Commit(txn));
  EXPECT_FALSE(db_->space()->IsAllocated(a).value());
  Transaction* txn2 = db_->Begin();
  PageId b = db_->space()->AllocatePage(txn2).value();
  ASSERT_OK(db_->Commit(txn2));
  EXPECT_EQ(a, b) << "freed page should be the next allocation hint";
}

TEST_F(SpaceManagerTest, RollbackUndoesAllocation) {
  Transaction* txn = db_->Begin();
  PageId a = db_->space()->AllocatePage(txn).value();
  EXPECT_TRUE(db_->space()->IsAllocated(a).value());
  ASSERT_OK(db_->Rollback(txn));
  EXPECT_FALSE(db_->space()->IsAllocated(a).value());
}

TEST_F(SpaceManagerTest, RollbackUndoesFree) {
  Transaction* setup = db_->Begin();
  PageId a = db_->space()->AllocatePage(setup).value();
  ASSERT_OK(db_->Commit(setup));

  Transaction* txn = db_->Begin();
  ASSERT_OK(db_->space()->FreePage(txn, a));
  EXPECT_FALSE(db_->space()->IsAllocated(a).value());
  ASSERT_OK(db_->Rollback(txn));
  EXPECT_TRUE(db_->space()->IsAllocated(a).value());
}

TEST_F(SpaceManagerTest, OutOfOrderUndoIsSafe) {
  // T1 allocates A, T2 allocates B, T1 aborts: B stays allocated, A frees.
  // (A free list could not honor this; the bitmap does.)
  Transaction* t1 = db_->Begin();
  Transaction* t2 = db_->Begin();
  PageId a = db_->space()->AllocatePage(t1).value();
  PageId b = db_->space()->AllocatePage(t2).value();
  ASSERT_NE(a, b);
  ASSERT_OK(db_->Rollback(t1));
  EXPECT_FALSE(db_->space()->IsAllocated(a).value());
  EXPECT_TRUE(db_->space()->IsAllocated(b).value());
  ASSERT_OK(db_->Commit(t2));
  EXPECT_TRUE(db_->space()->IsAllocated(b).value());
}

TEST_F(SpaceManagerTest, AllocationSurvivesCrashWhenCommitted) {
  PageId a;
  {
    Transaction* txn = db_->Begin();
    a = db_->space()->AllocatePage(txn).value();
    ASSERT_OK(db_->Commit(txn));
    db_->SimulateCrash();
  }
  db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
  EXPECT_TRUE(db_->space()->IsAllocated(a).value());
}

TEST_F(SpaceManagerTest, UncommittedAllocationUndoneByRestart) {
  PageId a;
  {
    Transaction* txn = db_->Begin();
    a = db_->space()->AllocatePage(txn).value();
    ASSERT_OK(db_->wal()->FlushAll());
    db_->SimulateCrash();
  }
  db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
  EXPECT_FALSE(db_->space()->IsAllocated(a).value());
}

TEST_F(SpaceManagerTest, CapacityExhaustionReported) {
  // Capacity with 512-byte pages: 4 * (512-40) * 8 = 15104 bits. Allocating
  // beyond that must fail cleanly, not loop.
  EXPECT_EQ(db_->space()->Capacity(),
            static_cast<uint64_t>(kSpaceMapPages) * (512 - kPageHeaderSize) * 8);
}

TEST_F(SpaceManagerTest, AllocatedCountTracks) {
  uint64_t before = db_->space()->AllocatedCount().value();
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->space()->AllocatePage(txn).ok());
  }
  ASSERT_OK(db_->Commit(txn));
  EXPECT_EQ(db_->space()->AllocatedCount().value(), before + 10);
}

}  // namespace
}  // namespace ariesim
