#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "test_util.h"

namespace ariesim {
namespace {

using testing::TempDir;

TEST(DiskManagerTest, WriteReadRoundTrip) {
  TempDir dir("disk_rw");
  Metrics m;
  DiskManager dm(dir.path() + "/data.db", 512, &m);
  ASSERT_OK(dm.Open());
  std::string page(512, 'p');
  ASSERT_OK(dm.WritePage(3, page.data()));
  std::string read(512, '\0');
  ASSERT_OK(dm.ReadPage(3, read.data()));
  EXPECT_EQ(read, page);
  EXPECT_EQ(dm.PagesOnDisk(), 4u);  // pages 0..3 materialized
}

TEST(DiskManagerTest, BeyondEofReadsZeroFilled) {
  TempDir dir("disk_eof");
  Metrics m;
  DiskManager dm(dir.path() + "/data.db", 512, &m);
  ASSERT_OK(dm.Open());
  std::string read(512, 'q');
  ASSERT_OK(dm.ReadPage(100, read.data()));
  EXPECT_EQ(read, std::string(512, '\0'));
}

TEST(DiskManagerTest, SparseHoleReadsZeroFilled) {
  TempDir dir("disk_hole");
  Metrics m;
  DiskManager dm(dir.path() + "/data.db", 512, &m);
  ASSERT_OK(dm.Open());
  std::string page(512, 'z');
  ASSERT_OK(dm.WritePage(5, page.data()));
  std::string read(512, 'q');
  ASSERT_OK(dm.ReadPage(2, read.data()));  // hole before page 5
  EXPECT_EQ(read, std::string(512, '\0'));
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  TempDir dir("disk_reopen");
  Metrics m;
  std::string path = dir.path() + "/data.db";
  {
    DiskManager dm(path, 256, &m);
    ASSERT_OK(dm.Open());
    std::string page(256, 'k');
    ASSERT_OK(dm.WritePage(1, page.data()));
    ASSERT_OK(dm.Sync());
  }
  {
    DiskManager dm(path, 256, &m);
    ASSERT_OK(dm.Open());
    std::string read(256, '\0');
    ASSERT_OK(dm.ReadPage(1, read.data()));
    EXPECT_EQ(read, std::string(256, 'k'));
  }
}

TEST(DiskManagerTest, MetricsCountIo) {
  TempDir dir("disk_metrics");
  Metrics m;
  DiskManager dm(dir.path() + "/data.db", 512, &m);
  ASSERT_OK(dm.Open());
  std::string page(512, 'a');
  ASSERT_OK(dm.WritePage(0, page.data()));
  ASSERT_OK(dm.WritePage(1, page.data()));
  ASSERT_OK(dm.ReadPage(0, page.data()));
  EXPECT_EQ(m.pages_written.load(), 2u);
  EXPECT_EQ(m.pages_read.load(), 1u);
}

}  // namespace
}  // namespace ariesim
