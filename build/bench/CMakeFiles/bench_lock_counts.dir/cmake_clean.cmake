file(REMOVE_RECURSE
  "CMakeFiles/bench_lock_counts.dir/bench_lock_counts.cpp.o"
  "CMakeFiles/bench_lock_counts.dir/bench_lock_counts.cpp.o.d"
  "bench_lock_counts"
  "bench_lock_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
