# Empty dependencies file for bench_lock_counts.
# This may be replaced when dependencies are built.
