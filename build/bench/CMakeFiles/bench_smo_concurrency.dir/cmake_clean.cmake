file(REMOVE_RECURSE
  "CMakeFiles/bench_smo_concurrency.dir/bench_smo_concurrency.cpp.o"
  "CMakeFiles/bench_smo_concurrency.dir/bench_smo_concurrency.cpp.o.d"
  "bench_smo_concurrency"
  "bench_smo_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smo_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
