# Empty compiler generated dependencies file for bench_smo_concurrency.
# This may be replaced when dependencies are built.
