file(REMOVE_RECURSE
  "CMakeFiles/storm_repro.dir/__/tools/storm_repro.cpp.o"
  "CMakeFiles/storm_repro.dir/__/tools/storm_repro.cpp.o.d"
  "storm_repro"
  "storm_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
