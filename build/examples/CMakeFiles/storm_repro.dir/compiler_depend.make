# Empty compiler generated dependencies file for storm_repro.
# This may be replaced when dependencies are built.
