# Empty dependencies file for bp_hammer.
# This may be replaced when dependencies are built.
