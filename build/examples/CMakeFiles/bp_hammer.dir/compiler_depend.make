# Empty compiler generated dependencies file for bp_hammer.
# This may be replaced when dependencies are built.
