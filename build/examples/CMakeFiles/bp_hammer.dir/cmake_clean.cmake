file(REMOVE_RECURSE
  "CMakeFiles/bp_hammer.dir/__/tools/bp_hammer.cpp.o"
  "CMakeFiles/bp_hammer.dir/__/tools/bp_hammer.cpp.o.d"
  "bp_hammer"
  "bp_hammer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_hammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
