file(REMOVE_RECURSE
  "CMakeFiles/ariesh.dir/__/tools/ariesh.cpp.o"
  "CMakeFiles/ariesh.dir/__/tools/ariesh.cpp.o.d"
  "ariesh"
  "ariesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ariesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
