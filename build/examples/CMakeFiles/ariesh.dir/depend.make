# Empty dependencies file for ariesh.
# This may be replaced when dependencies are built.
