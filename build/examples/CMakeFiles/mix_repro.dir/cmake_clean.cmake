file(REMOVE_RECURSE
  "CMakeFiles/mix_repro.dir/__/tools/mix_repro.cpp.o"
  "CMakeFiles/mix_repro.dir/__/tools/mix_repro.cpp.o.d"
  "mix_repro"
  "mix_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
