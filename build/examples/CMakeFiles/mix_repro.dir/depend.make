# Empty dependencies file for mix_repro.
# This may be replaced when dependencies are built.
