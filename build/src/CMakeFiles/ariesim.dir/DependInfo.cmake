
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cpp" "src/CMakeFiles/ariesim.dir/btree/btree.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/btree/btree.cpp.o.d"
  "/root/repo/src/btree/cursor.cpp" "src/CMakeFiles/ariesim.dir/btree/cursor.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/btree/cursor.cpp.o.d"
  "/root/repo/src/btree/locking_protocol.cpp" "src/CMakeFiles/ariesim.dir/btree/locking_protocol.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/btree/locking_protocol.cpp.o.d"
  "/root/repo/src/btree/node.cpp" "src/CMakeFiles/ariesim.dir/btree/node.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/btree/node.cpp.o.d"
  "/root/repo/src/btree/smo.cpp" "src/CMakeFiles/ariesim.dir/btree/smo.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/btree/smo.cpp.o.d"
  "/root/repo/src/btree/undo.cpp" "src/CMakeFiles/ariesim.dir/btree/undo.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/btree/undo.cpp.o.d"
  "/root/repo/src/buffer/buffer_pool.cpp" "src/CMakeFiles/ariesim.dir/buffer/buffer_pool.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/buffer/buffer_pool.cpp.o.d"
  "/root/repo/src/db/catalog.cpp" "src/CMakeFiles/ariesim.dir/db/catalog.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/db/catalog.cpp.o.d"
  "/root/repo/src/db/database.cpp" "src/CMakeFiles/ariesim.dir/db/database.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/db/database.cpp.o.d"
  "/root/repo/src/db/table.cpp" "src/CMakeFiles/ariesim.dir/db/table.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/db/table.cpp.o.d"
  "/root/repo/src/kvl/kvl_protocol.cpp" "src/CMakeFiles/ariesim.dir/kvl/kvl_protocol.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/kvl/kvl_protocol.cpp.o.d"
  "/root/repo/src/lock/lock_manager.cpp" "src/CMakeFiles/ariesim.dir/lock/lock_manager.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/lock/lock_manager.cpp.o.d"
  "/root/repo/src/record/heap_file.cpp" "src/CMakeFiles/ariesim.dir/record/heap_file.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/record/heap_file.cpp.o.d"
  "/root/repo/src/record/heap_page.cpp" "src/CMakeFiles/ariesim.dir/record/heap_page.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/record/heap_page.cpp.o.d"
  "/root/repo/src/record/record_manager.cpp" "src/CMakeFiles/ariesim.dir/record/record_manager.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/record/record_manager.cpp.o.d"
  "/root/repo/src/recovery/recovery_manager.cpp" "src/CMakeFiles/ariesim.dir/recovery/recovery_manager.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/recovery/recovery_manager.cpp.o.d"
  "/root/repo/src/storage/disk_manager.cpp" "src/CMakeFiles/ariesim.dir/storage/disk_manager.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/storage/disk_manager.cpp.o.d"
  "/root/repo/src/storage/page.cpp" "src/CMakeFiles/ariesim.dir/storage/page.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/storage/page.cpp.o.d"
  "/root/repo/src/storage/space_manager.cpp" "src/CMakeFiles/ariesim.dir/storage/space_manager.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/storage/space_manager.cpp.o.d"
  "/root/repo/src/txn/transaction.cpp" "src/CMakeFiles/ariesim.dir/txn/transaction.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/txn/transaction.cpp.o.d"
  "/root/repo/src/txn/transaction_manager.cpp" "src/CMakeFiles/ariesim.dir/txn/transaction_manager.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/txn/transaction_manager.cpp.o.d"
  "/root/repo/src/util/coding.cpp" "src/CMakeFiles/ariesim.dir/util/coding.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/util/coding.cpp.o.d"
  "/root/repo/src/util/crc32c.cpp" "src/CMakeFiles/ariesim.dir/util/crc32c.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/util/crc32c.cpp.o.d"
  "/root/repo/src/util/rwlatch.cpp" "src/CMakeFiles/ariesim.dir/util/rwlatch.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/util/rwlatch.cpp.o.d"
  "/root/repo/src/wal/log_manager.cpp" "src/CMakeFiles/ariesim.dir/wal/log_manager.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/wal/log_manager.cpp.o.d"
  "/root/repo/src/wal/log_record.cpp" "src/CMakeFiles/ariesim.dir/wal/log_record.cpp.o" "gcc" "src/CMakeFiles/ariesim.dir/wal/log_record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
