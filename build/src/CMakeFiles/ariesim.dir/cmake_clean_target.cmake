file(REMOVE_RECURSE
  "libariesim.a"
)
