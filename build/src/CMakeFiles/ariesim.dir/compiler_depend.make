# Empty compiler generated dependencies file for ariesim.
# This may be replaced when dependencies are built.
