# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/record_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
