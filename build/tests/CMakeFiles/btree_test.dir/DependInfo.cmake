
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/btree/btree_basic_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/btree_basic_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/btree_basic_test.cpp.o.d"
  "/root/repo/tests/btree/btree_smo_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/btree_smo_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/btree_smo_test.cpp.o.d"
  "/root/repo/tests/btree/cursor_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/cursor_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/cursor_test.cpp.o.d"
  "/root/repo/tests/btree/delete_bit_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/delete_bit_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/delete_bit_test.cpp.o.d"
  "/root/repo/tests/btree/locking_matrix_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/locking_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/locking_matrix_test.cpp.o.d"
  "/root/repo/tests/btree/logical_undo_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/logical_undo_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/logical_undo_test.cpp.o.d"
  "/root/repo/tests/btree/node_ops_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/node_ops_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/node_ops_test.cpp.o.d"
  "/root/repo/tests/btree/page_size_sweep_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/page_size_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/page_size_sweep_test.cpp.o.d"
  "/root/repo/tests/btree/phantom_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/phantom_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/phantom_test.cpp.o.d"
  "/root/repo/tests/btree/serializability_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/serializability_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/serializability_test.cpp.o.d"
  "/root/repo/tests/btree/smo_interaction_test.cpp" "tests/CMakeFiles/btree_test.dir/btree/smo_interaction_test.cpp.o" "gcc" "tests/CMakeFiles/btree_test.dir/btree/smo_interaction_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ariesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
