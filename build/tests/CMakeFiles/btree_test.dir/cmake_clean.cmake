file(REMOVE_RECURSE
  "CMakeFiles/btree_test.dir/btree/btree_basic_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/btree_basic_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/btree_smo_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/btree_smo_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/cursor_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/cursor_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/delete_bit_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/delete_bit_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/locking_matrix_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/locking_matrix_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/logical_undo_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/logical_undo_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/node_ops_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/node_ops_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/page_size_sweep_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/page_size_sweep_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/phantom_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/phantom_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/serializability_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/serializability_test.cpp.o.d"
  "CMakeFiles/btree_test.dir/btree/smo_interaction_test.cpp.o"
  "CMakeFiles/btree_test.dir/btree/smo_interaction_test.cpp.o.d"
  "btree_test"
  "btree_test.pdb"
  "btree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
