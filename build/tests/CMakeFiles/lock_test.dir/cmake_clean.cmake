file(REMOVE_RECURSE
  "CMakeFiles/lock_test.dir/lock/lock_manager_test.cpp.o"
  "CMakeFiles/lock_test.dir/lock/lock_manager_test.cpp.o.d"
  "CMakeFiles/lock_test.dir/lock/lock_mode_test.cpp.o"
  "CMakeFiles/lock_test.dir/lock/lock_mode_test.cpp.o.d"
  "lock_test"
  "lock_test.pdb"
  "lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
